package qcheck

import (
	"testing"

	"proteus/internal/engine"
	"proteus/internal/exec"
)

// TestClusterEquivalence is the distributed-vs-local differential check on
// fixed seeds, sized for CI's -race job: for each universe it runs every
// generated query twice on a coordinator engine scattering over three
// in-process worker query services (the real HTTP fragment protocol) and
// on a plain serial engine, requiring byte-identical results where the
// output order is deterministic and oracle-equivalent results elsewhere.
// The second run exercises repeated scatter over warm worker engines.
func TestClusterEquivalence(t *testing.T) {
	seeds := []int64{101, 202, 303}
	queriesPer := 24
	if testing.Short() {
		seeds = seeds[:1]
		queriesPer = 10
	}
	localCfg := engine.Config{Parallelism: 1, Vectorized: exec.VecOff, PlanCacheSize: -1}
	for _, seed := range seeds {
		u, err := genUniverse(seed)
		if err != nil {
			t.Fatalf("universe %d: %v", seed, err)
		}
		local, err := buildEngine(localCfg, u)
		if err != nil {
			t.Fatalf("universe %d: build local engine: %v", seed, err)
		}
		dist, err := buildRunner(engConfig{name: "cluster", cfg: localCfg, workers: 3}, u)
		if err != nil {
			t.Fatalf("universe %d: build cluster: %v", seed, err)
		}
		for q := 0; q < queriesPer; q++ {
			spec := genQuery(mix(seed, int64(q)), u)
			text := spec.render()
			for run := 0; run < 2; run++ {
				rLoc, errLoc := runEngineQuery(local, spec.lang, text)
				rDist, errDist := runEngineQuery(dist.eng, spec.lang, text)
				if (errLoc == nil) != (errDist == nil) {
					t.Fatalf("useed=%d case=%d run=%d: local err=%v, distributed err=%v\n  query: %s",
						seed, q, run, errLoc, errDist, text)
				}
				if errLoc != nil {
					break // consistent rejection; nothing to compare
				}
				if spec.exactOrder() {
					if d := compareExact(rLoc, rDist); d != "" {
						t.Fatalf("useed=%d case=%d run=%d: distributed diverges from local: %s\n  query: %s",
							seed, q, run, d, text)
					}
					continue
				}
				// Implementation-defined output order: hold the distributed
				// result to the same oracle rules the config matrix uses.
				oracle, c, oerr := runOracle(u, spec.lang, text)
				if oerr != nil {
					t.Fatalf("useed=%d case=%d: engines accept but oracle rejects: %v\n  query: %s",
						seed, q, oerr, text)
				}
				if d := compareOracle(oracle, rDist, c.OrderBy, c.Limit); d != "" {
					t.Fatalf("useed=%d case=%d run=%d: distributed diverges from oracle: %s\n  query: %s",
						seed, q, run, d, text)
				}
			}
		}
		// The check is vacuous if every plan fell back to local execution:
		// require that this universe actually scattered some queries.
		if got := dist.eng.Metrics().ClusterQueries; got == 0 {
			t.Errorf("useed=%d: no query executed distributed (all fell back to local)", seed)
		}
		dist.close()
	}
}
