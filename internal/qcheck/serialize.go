// Serialization of generated truth rows into the raw file images the
// engines parse: RFC-4180 CSV (with delimiter/CRLF variation), JSON
// (NDJSON or array form, optional \uXXXX ASCII-escaping), and the binpg
// binary format (row- or column-major). The truth rows themselves feed
// the Volcano oracle directly, so a round-trip through these writers and
// the engine's raw-data parsers is itself under differential test.
package qcheck

import (
	"bytes"
	"fmt"
	"strconv"
	"unicode/utf16"

	"proteus/internal/plugin/binpg"
	"proteus/internal/types"
)

func serializeTable(t *qTable) error {
	switch t.Format {
	case "csv":
		t.Data = encodeCSV(t)
	case "json":
		t.Data = encodeJSON(t)
	case "bin":
		cols, err := binpg.FromValues(t.Schema, t.Rows)
		if err != nil {
			return err
		}
		if t.Opts.Columnar {
			t.Data, err = binpg.EncodeColumnar(cols)
		} else {
			t.Data, err = binpg.EncodeRows(cols)
		}
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q", t.Format)
	}
	return nil
}

// formatFloat renders a dyadic rational exactly ("12.25", "-3.5", "7").
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'f', -1, 64) }

func encodeCSV(t *qTable) []byte {
	delim := byte(',')
	if t.Opts.Delimiter != 0 {
		delim = t.Opts.Delimiter
	}
	eol := "\n"
	if t.CRLF {
		eol = "\r\n"
	}
	var buf bytes.Buffer
	for _, row := range t.Rows {
		for i, f := range t.Schema.Fields {
			if i > 0 {
				buf.WriteByte(delim)
			}
			v, _ := row.Field(f.Name)
			writeCSVField(&buf, v, delim)
		}
		buf.WriteString(eol)
	}
	return buf.Bytes()
}

func writeCSVField(buf *bytes.Buffer, v types.Value, delim byte) {
	var s string
	switch v.Kind {
	case types.KindInt:
		s = strconv.FormatInt(v.I, 10)
	case types.KindFloat:
		s = formatFloat(v.F)
	case types.KindBool:
		if v.Bool() {
			s = "true"
		} else {
			s = "false"
		}
	default:
		s = v.S
	}
	if bytes.ContainsAny([]byte(s), string([]byte{delim, '"', '\n', '\r'})) {
		buf.WriteByte('"')
		for i := 0; i < len(s); i++ {
			if s[i] == '"' {
				buf.WriteByte('"')
			}
			buf.WriteByte(s[i])
		}
		buf.WriteByte('"')
		return
	}
	buf.WriteString(s)
}

func encodeJSON(t *qTable) []byte {
	// Deterministically vary string escaping: tables whose seed-dependent
	// name hash is even escape all non-ASCII as \uXXXX (surrogate pairs for
	// astral code points), exercising the parser's escape decoder.
	asciiOnly := len(t.Rows)%2 == 0
	var buf bytes.Buffer
	if t.Array {
		buf.WriteByte('[')
	}
	for ri, row := range t.Rows {
		if t.Array && ri > 0 {
			buf.WriteByte(',')
		}
		buf.WriteByte('{')
		for i, f := range t.Schema.Fields {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(&buf, f.Name, asciiOnly)
			buf.WriteByte(':')
			v, _ := row.Field(f.Name)
			writeJSONValue(&buf, v, asciiOnly)
		}
		buf.WriteByte('}')
		if !t.Array {
			buf.WriteByte('\n')
		}
	}
	if t.Array {
		buf.WriteByte(']')
	}
	return buf.Bytes()
}

func writeJSONValue(buf *bytes.Buffer, v types.Value, asciiOnly bool) {
	switch v.Kind {
	case types.KindNull:
		buf.WriteString("null")
	case types.KindInt:
		buf.WriteString(strconv.FormatInt(v.I, 10))
	case types.KindFloat:
		s := formatFloat(v.F)
		buf.WriteString(s)
		if !bytes.ContainsRune([]byte(s), '.') {
			buf.WriteString(".0") // keep the value a JSON float
		}
	case types.KindBool:
		if v.Bool() {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case types.KindString:
		writeJSONString(buf, v.S, asciiOnly)
	case types.KindList, types.KindBag:
		buf.WriteByte('[')
		for i, e := range v.Elems {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONValue(buf, e, asciiOnly)
		}
		buf.WriteByte(']')
	case types.KindRecord:
		buf.WriteByte('{')
		for i, n := range v.Rec.Names {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSONString(buf, n, asciiOnly)
			buf.WriteByte(':')
			writeJSONValue(buf, v.Rec.Values[i], asciiOnly)
		}
		buf.WriteByte('}')
	default:
		panic("qcheck: unencodable JSON value kind")
	}
}

func writeJSONString(buf *bytes.Buffer, s string, asciiOnly bool) {
	buf.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			buf.WriteString(`\"`)
		case '\\':
			buf.WriteString(`\\`)
		case '\n':
			buf.WriteString(`\n`)
		case '\r':
			buf.WriteString(`\r`)
		case '\t':
			buf.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(buf, `\u%04x`, r)
			} else if asciiOnly && r > 0x7e {
				if r > 0xffff {
					hi, lo := utf16.EncodeRune(r)
					fmt.Fprintf(buf, `\u%04x\u%04x`, hi, lo)
				} else {
					fmt.Fprintf(buf, `\u%04x`, r)
				}
			} else {
				buf.WriteRune(r)
			}
		}
	}
	buf.WriteByte('"')
}
