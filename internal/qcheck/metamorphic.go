// Metamorphic oracles: properties that must hold between a query and
// derived variants of itself, checked on the base configuration. These
// catch bugs the differential tier cannot — anything the Volcano
// interpreter and the compiled engine get wrong the same way.
package qcheck

import (
	"fmt"

	"proteus/internal/expr"
	"proteus/internal/types"
)

// runMetamorphic applies every eligible metamorphic check to the case.
func runMetamorphic(rep *Report, spec *querySpec, base *engineRunner,
	baseRes *resultSet, seed int64, report func(cfg, kind, detail string, shrinkCfg *engConfig)) {

	if spec.mode == modeProject && spec.limit == 0 && len(spec.orderBy) == 0 {
		checkTLP(rep, spec, base, baseRes, seed, report)
		checkCount(rep, spec, base, baseRes, report)
	}
	if spec.limit > 0 && len(spec.orderBy) > 0 {
		checkLimitPrefix(rep, spec, base, baseRes, report)
	}
}

// checkTLP verifies ternary-logic partitioning: for any predicate p, the
// rows of Q equal the union of Q restricted to p, to NOT p, and to
// (p) IS NULL. Under the engine's null semantics these three branches are
// exhaustive and mutually exclusive for every row.
func checkTLP(rep *Report, spec *querySpec, base *engineRunner, baseRes *resultSet,
	seed int64, report func(cfg, kind, detail string, shrinkCfg *engConfig)) {

	r := newRand(seed)
	p := genPred(r, spec.scope, 1)

	var union []types.Value
	for i, variant := range []expr.Expr{
		p,
		&expr.Not{E: p},
		&expr.IsNull{E: p},
	} {
		qv := spec.clone()
		qv.where = append(append([]expr.Expr(nil), spec.where...), variant)
		res, err := runEngineQuery(base.eng, qv.lang, qv.render())
		rep.Comparisons++
		if err != nil {
			report("base", "metamorphic:tlp", fmt.Sprintf(
				"partition %d rejected (%v): %s", i, err, qv.render()), nil)
			return
		}
		union = append(union, res.Rows...)
	}
	if d := compareMultiset(baseRes.Rows, union); d != "" {
		report("base", "metamorphic:tlp", fmt.Sprintf(
			"partition union differs from whole (partition pred %s): %s", renderExpr(p), d), nil)
	}
}

// checkCount verifies that COUNT(*) with the same sources and filters
// equals the projected row count.
func checkCount(rep *Report, spec *querySpec, base *engineRunner, baseRes *resultSet,
	report func(cfg, kind, detail string, shrinkCfg *engConfig)) {

	qc := spec.clone()
	qc.mode = modeAgg
	qc.items = nil
	qc.aggs = []aggSpec{{kind: expr.AggCount, alias: "z0"}}
	qc.orderBy = nil
	qc.limit = 0
	res, err := runEngineQuery(base.eng, qc.lang, qc.render())
	rep.Comparisons++
	if err != nil {
		report("base", "metamorphic:count", fmt.Sprintf("COUNT variant rejected (%v): %s", err, qc.render()), nil)
		return
	}
	n, ok := scalarInt(res)
	if !ok {
		report("base", "metamorphic:count", fmt.Sprintf("COUNT variant returned non-scalar result (%d rows)", len(res.Rows)), nil)
		return
	}
	if n != int64(len(baseRes.Rows)) {
		report("base", "metamorphic:count", fmt.Sprintf(
			"COUNT(*) = %d but projection returned %d rows (%s)", n, len(baseRes.Rows), qc.render()), nil)
	}
}

// scalarInt extracts the single integer of a 1×1 result.
func scalarInt(res *resultSet) (int64, bool) {
	if len(res.Rows) != 1 {
		return 0, false
	}
	v := res.Rows[0]
	if v.Kind == types.KindRecord && len(v.Rec.Values) == 1 {
		v = v.Rec.Values[0]
	}
	if v.Kind != types.KindInt {
		return 0, false
	}
	return v.I, true
}

// checkLimitPrefix verifies that under ORDER BY, LIMIT k is a key-prefix of
// LIMIT k+7 (ties may reorder rows with equal keys, so only the ORDER BY
// key sequence is compared).
func checkLimitPrefix(rep *Report, spec *querySpec, base *engineRunner, baseRes *resultSet,
	report func(cfg, kind, detail string, shrinkCfg *engConfig)) {

	ql := spec.clone()
	ql.limit = spec.limit + 7
	res, err := runEngineQuery(base.eng, ql.lang, ql.render())
	rep.Comparisons++
	if err != nil {
		report("base", "metamorphic:limit", fmt.Sprintf("larger-LIMIT variant rejected (%v)", err), nil)
		return
	}
	if len(baseRes.Rows) > len(res.Rows) {
		report("base", "metamorphic:limit", fmt.Sprintf(
			"LIMIT %d returned %d rows but LIMIT %d returned %d",
			spec.limit, len(baseRes.Rows), ql.limit, len(res.Rows)), nil)
		return
	}
	var cols []string
	for _, o := range spec.orderBy {
		cols = append(cols, o.col)
	}
	for i := range baseRes.Rows {
		a, b := orderKeyOf(baseRes.Rows[i], cols), orderKeyOf(res.Rows[i], cols)
		if a != b {
			report("base", "metamorphic:limit", fmt.Sprintf(
				"LIMIT %d row %d key %s is not a prefix of LIMIT %d (key %s)",
				spec.limit, i, clip(a, 120), ql.limit, clip(b, 120)), nil)
			return
		}
	}
}
