// Random query generation. A querySpec is the structured form of one
// generated query; it renders to SQL or comprehension text (render.go) and
// clones cheaply for shrinking and for metamorphic variants.
//
// Everything is valid by construction: arithmetic only over numerics,
// comparisons only within a type class, LIKE only over strings, Mod only
// over ints (the tuple compiler rejects float Mod while the interpreter
// accepts it), aggregates always aliased (default names like "count(*)"
// are not referenceable in ORDER BY), ORDER BY only over record-shaped
// results (single-item projections yield bare values where ORDER BY is a
// silent no-op), and LIMIT ≥ 1 (the parser reads LIMIT 0 as "no limit").
package qcheck

import (
	"fmt"
	"math/rand"

	"proteus/internal/expr"
	"proteus/internal/types"
)

type queryMode int

const (
	modeProject queryMode = iota // SELECT exprs / yield bag(...)
	modeAgg                      // scalar aggregates, no grouping
	modeGroup                    // GROUP BY (SQL only)
)

// colRef is a column visible inside a query scope.
type colRef struct {
	alias string
	name  string
	kind  types.Kind
	key   bool
	str   bool // string-class (vs numeric); bools are their own class
}

type item struct {
	e     expr.Expr
	alias string
}

type aggSpec struct {
	kind  expr.AggKind
	arg   expr.Expr // nil for COUNT(*)
	alias string
}

type orderKey struct {
	col  string
	desc bool
}

// querySpec is one generated query over a universe.
type querySpec struct {
	lang     string // "sql" or "comp"
	tables   []string
	aliases  []string
	joinPred expr.Expr // non-nil iff len(tables) == 2
	unnest   string    // comp only: nested column unnested as alias "u"
	where    []expr.Expr
	mode     queryMode
	items    []item // modeProject: select list; modeGroup: key items
	keys     []expr.Expr
	aggs     []aggSpec
	orderBy  []orderKey
	limit    int      // 0 = none
	scope    []colRef // columns visible in the query, for metamorphic variants
}

func (q *querySpec) clone() *querySpec {
	c := *q
	c.tables = append([]string(nil), q.tables...)
	c.aliases = append([]string(nil), q.aliases...)
	c.where = append([]expr.Expr(nil), q.where...)
	c.items = append([]item(nil), q.items...)
	c.keys = append([]expr.Expr(nil), q.keys...)
	c.aggs = append([]aggSpec(nil), q.aggs...)
	c.orderBy = append([]orderKey(nil), q.orderBy...)
	return &c
}

func fa(alias, name string) expr.Expr {
	return &expr.FieldAcc{Base: &expr.Ref{Name: alias}, Name: name}
}

// genQuery draws one query over the universe from the case seed.
func genQuery(seed int64, u *universe) *querySpec {
	r := newRand(seed)
	q := &querySpec{}
	if r.Intn(4) == 0 {
		q.lang = "comp"
	} else {
		q.lang = "sql"
	}

	// Sources: one table, or an equi-join of two.
	t0 := u.Tables[r.Intn(len(u.Tables))]
	q.tables = append(q.tables, t0.Name)
	q.aliases = append(q.aliases, "a")
	scope := tableScope("a", t0)
	if len(u.Tables) > 1 && r.Intn(3) == 0 {
		var t1 *qTable
		for {
			t1 = u.Tables[r.Intn(len(u.Tables))]
			if t1 != t0 {
				break
			}
		}
		q.tables = append(q.tables, t1.Name)
		q.aliases = append(q.aliases, "b")
		bScope := tableScope("b", t1)
		q.joinPred = genJoinPred(r, scope, bScope)
		if q.joinPred == nil {
			// No compatible key pair; fall back to single-table.
			q.tables = q.tables[:1]
			q.aliases = q.aliases[:1]
		} else {
			scope = append(scope, bScope...)
		}
	}
	// Unnest (comprehensions only, single JSON table with a nested column).
	if q.lang == "comp" && len(q.tables) == 1 && t0.Nested != nil && r.Intn(2) == 0 {
		q.unnest = t0.Nested.Name
		scope = append(scope,
			colRef{alias: "u", name: "p", kind: types.KindInt, key: true},
			colRef{alias: "u", name: "q", kind: types.KindString, key: true, str: true},
		)
	}

	// WHERE: 0–3 conjuncts.
	for i, n := 0, r.Intn(4); i < n; i++ {
		q.where = append(q.where, genPred(r, scope, 2))
	}
	// Half the time add a predicate aimed exactly at a column's observed
	// min or max — the zone-map boundary, where an off-by-one in the skip
	// test silently loses the edge rows.
	if r.Intn(2) == 0 {
		if bp := genBoundaryPred(r, t0, "a"); bp != nil {
			q.where = append(q.where, bp)
		}
	}

	// Shape.
	switch {
	case q.lang == "comp":
		if r.Intn(3) == 0 {
			q.mode = modeAgg
			q.aggs = []aggSpec{genAgg(r, scope, 0)}
		} else {
			q.mode = modeProject
			q.items = genItems(r, scope)
		}
	default:
		switch r.Intn(5) {
		case 0:
			q.mode = modeAgg
			for i, n := 0, 1+r.Intn(3); i < n; i++ {
				q.aggs = append(q.aggs, genAgg(r, scope, i))
			}
		case 1, 2:
			q.mode = modeGroup
			genGroup(r, q, scope)
		default:
			q.mode = modeProject
			q.items = genItems(r, scope)
		}
	}

	// ORDER BY over output column names; only record-shaped results.
	if q.lang == "sql" && r.Intn(2) == 0 {
		if cols := q.orderableCols(); len(cols) > 0 {
			r.Shuffle(len(cols), func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
			for i, n := 0, 1+r.Intn(2); i < n && i < len(cols); i++ {
				q.orderBy = append(q.orderBy, orderKey{col: cols[i], desc: r.Intn(2) == 0})
			}
		}
	}
	// LIMIT (SQL; projection or grouping).
	if q.lang == "sql" && q.mode != modeAgg && r.Intn(3) == 0 {
		q.limit = 1 + r.Intn(20)
	}
	q.scope = scope
	return q
}

// exactOrder reports whether the query's output order is deterministic
// across every execution mode, making byte-exact ordered comparison valid:
// single-source projections (scan order is preserved by every mode) and
// scalar aggregates (one row, exactly-summable arguments). Joins and
// GROUP BY emit in implementation-defined order — the adaptive optimizer
// may re-plan them between runs once statistics warm up — so those fall
// back to the oracle-tier rules.
func (q *querySpec) exactOrder() bool {
	switch q.mode {
	case modeAgg:
		return true
	case modeProject:
		return len(q.tables) == 1
	default:
		return false
	}
}

// orderableCols lists output column names usable in ORDER BY. Results must
// be records: multi-item projections, or any grouped query.
func (q *querySpec) orderableCols() []string {
	var cols []string
	switch q.mode {
	case modeProject:
		if len(q.items) < 2 {
			return nil
		}
		for _, it := range q.items {
			cols = append(cols, it.alias)
		}
	case modeGroup:
		for _, it := range q.items {
			cols = append(cols, it.alias)
		}
		for _, a := range q.aggs {
			cols = append(cols, a.alias)
		}
	}
	return cols
}

func tableScope(alias string, t *qTable) []colRef {
	var out []colRef
	for _, c := range t.Cols {
		out = append(out, colRef{
			alias: alias, name: c.Name, kind: c.Kind, key: c.Key,
			str: c.Kind == types.KindString,
		})
	}
	return out
}

func pick(r *rand.Rand, scope []colRef, ok func(colRef) bool) (colRef, bool) {
	var cands []colRef
	for _, c := range scope {
		if ok(c) {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return colRef{}, false
	}
	return cands[r.Intn(len(cands))], true
}

func genJoinPred(r *rand.Rand, left, right []colRef) expr.Expr {
	// String-key joins exercise the boxed-key join path (build, probe, and
	// their vectorized variants); int keys take the specialized int path.
	if r.Intn(3) == 0 {
		lk, lok := pick(r, left, func(c colRef) bool { return c.key && c.kind == types.KindString })
		rk, rok := pick(r, right, func(c colRef) bool { return c.key && c.kind == types.KindString })
		if lok && rok {
			return &expr.BinOp{Op: expr.OpEq, L: fa(lk.alias, lk.name), R: fa(rk.alias, rk.name)}
		}
	}
	lk, lok := pick(r, left, func(c colRef) bool { return c.key && c.kind == types.KindInt })
	rk, rok := pick(r, right, func(c colRef) bool { return c.key && c.kind == types.KindInt })
	if !lok || !rok {
		return nil
	}
	pred := &expr.BinOp{Op: expr.OpEq, L: fa(lk.alias, lk.name), R: fa(rk.alias, rk.name)}
	// Occasionally AND a string key pair on top: a multi-key equi-join with
	// mixed kinds forces the boxed multi-key table.
	if r.Intn(4) == 0 {
		ls, lsok := pick(r, left, func(c colRef) bool { return c.key && c.kind == types.KindString })
		rs, rsok := pick(r, right, func(c colRef) bool { return c.key && c.kind == types.KindString })
		if lsok && rsok {
			return &expr.BinOp{Op: expr.OpAnd, L: pred,
				R: &expr.BinOp{Op: expr.OpEq, L: fa(ls.alias, ls.name), R: fa(rs.alias, rs.name)}}
		}
	}
	return pred
}

// genNumExpr builds a numeric expression over the scope (or a constant if
// the scope has no numeric columns).
func genNumExpr(r *rand.Rand, scope []colRef, depth int) expr.Expr {
	c, ok := pick(r, scope, func(c colRef) bool {
		return c.kind == types.KindInt || c.kind == types.KindFloat
	})
	if !ok {
		return &expr.Const{V: types.IntValue(int64(r.Intn(9)))}
	}
	base := fa(c.alias, c.name)
	if depth == 0 || r.Intn(2) == 0 {
		return base
	}
	ops := []expr.BinKind{expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv}
	if c.kind == types.KindInt {
		ops = append(ops, expr.OpMod)
	}
	op := ops[r.Intn(len(ops))]
	var rhs expr.Expr
	if r.Intn(2) == 0 {
		if c2, ok := pick(r, scope, func(x colRef) bool { return x.kind == c.kind }); ok {
			rhs = fa(c2.alias, c2.name)
		}
	}
	if rhs == nil {
		if c.kind == types.KindFloat {
			rhs = &expr.Const{V: types.FloatValue(genFloat(r))}
		} else {
			rhs = &expr.Const{V: types.IntValue(int64(r.Intn(13) - 6))}
		}
	}
	if op == expr.OpMod {
		// Mod is int×int only: a float partner would compile-error.
		if c2, ok := rhs.(*expr.Const); ok && c2.V.Kind == types.KindFloat {
			rhs = &expr.Const{V: types.IntValue(1 + int64(r.Intn(7)))}
		}
	}
	if r.Intn(6) == 0 {
		rhs = &expr.Neg{E: rhs}
	}
	return &expr.BinOp{Op: op, L: base, R: rhs}
}

var cmpOps = []expr.BinKind{expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe}

// genBoundaryPred builds a comparison whose constant is exactly a numeric
// column's minimum or maximum over the table's truth rows. These predicates
// sit on the zone-map boundary: Eq/Le at the min (or Eq/Ge at the max) must
// keep the window, Lt at the min (Gt at the max) must be free to skip it —
// both with the edge rows intact.
func genBoundaryPred(r *rand.Rand, t *qTable, alias string) expr.Expr {
	var cands []qColumn
	for _, c := range t.Cols {
		if c.Kind == types.KindInt || c.Kind == types.KindFloat {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 || len(t.Rows) == 0 {
		return nil
	}
	c := cands[r.Intn(len(cands))]
	var lo, hi types.Value
	found := false
	for _, row := range t.Rows {
		v, ok := row.Field(c.Name)
		if !ok || v.IsNull() {
			continue
		}
		if !found || v.AsFloat() < lo.AsFloat() {
			lo = v
		}
		if !found || v.AsFloat() > hi.AsFloat() {
			hi = v
		}
		found = true
	}
	if !found {
		return nil // all-NULL column: no boundary to aim at
	}
	bound := lo
	if r.Intn(2) == 0 {
		bound = hi
	}
	op := cmpOps[r.Intn(len(cmpOps))]
	return &expr.BinOp{Op: op, L: fa(alias, c.Name), R: &expr.Const{V: bound}}
}

// genPred builds a boolean predicate over the scope.
func genPred(r *rand.Rand, scope []colRef, depth int) expr.Expr {
	if depth > 0 {
		switch r.Intn(5) {
		case 0:
			return &expr.BinOp{Op: expr.OpAnd,
				L: genPred(r, scope, depth-1), R: genPred(r, scope, depth-1)}
		case 1:
			return &expr.BinOp{Op: expr.OpOr,
				L: genPred(r, scope, depth-1), R: genPred(r, scope, depth-1)}
		case 2:
			return &expr.Not{E: genPred(r, scope, depth-1)}
		}
	}
	// Leaves.
	switch r.Intn(6) {
	case 0: // string comparison against a safe literal, or LIKE
		if c, ok := pick(r, scope, func(c colRef) bool { return c.str }); ok {
			switch r.Intn(3) {
			case 0:
				return &expr.Like{E: fa(c.alias, c.name), Needle: likeNeedles[r.Intn(len(likeNeedles))]}
			case 1:
				return &expr.Like{E: fa(c.alias, c.name),
					Needle: prefixNeedles[r.Intn(len(prefixNeedles))], Prefix: true}
			}
			lit := keyStrings[r.Intn(len(keyStrings))]
			op := cmpOps[r.Intn(len(cmpOps))]
			return &expr.BinOp{Op: op, L: fa(c.alias, c.name),
				R: &expr.Const{V: types.StringValue(lit)}}
		}
	case 1: // bool column as predicate
		if c, ok := pick(r, scope, func(c colRef) bool { return c.kind == types.KindBool }); ok {
			if r.Intn(2) == 0 {
				return &expr.Not{E: fa(c.alias, c.name)}
			}
			return fa(c.alias, c.name)
		}
	case 2: // IS [NOT] NULL
		if len(scope) > 0 {
			c := scope[r.Intn(len(scope))]
			var e expr.Expr = &expr.IsNull{E: fa(c.alias, c.name)}
			if r.Intn(2) == 0 {
				e = &expr.Not{E: e}
			}
			return e
		}
	}
	// Default: numeric comparison.
	l := genNumExpr(r, scope, 1)
	op := cmpOps[r.Intn(len(cmpOps))]
	var rhs expr.Expr
	switch r.Intn(3) {
	case 0:
		rhs = genNumExpr(r, scope, 0)
	case 1:
		rhs = &expr.Const{V: types.IntValue(int64(r.Intn(17) - 8))}
	default:
		rhs = &expr.Const{V: types.FloatValue(genFloat(r))}
	}
	return &expr.BinOp{Op: op, L: l, R: rhs}
}

// genItems builds 1–4 projection items.
func genItems(r *rand.Rand, scope []colRef) []item {
	n := 1 + r.Intn(4)
	items := make([]item, 0, n)
	for i := 0; i < n; i++ {
		var e expr.Expr
		if r.Intn(3) == 0 {
			e = genNumExpr(r, scope, 1)
		} else if len(scope) > 0 {
			c := scope[r.Intn(len(scope))]
			e = fa(c.alias, c.name)
		} else {
			e = &expr.Const{V: types.IntValue(int64(i))}
		}
		items = append(items, item{e: e, alias: fmt.Sprintf("p%d", i)})
	}
	return items
}

// genAggArg builds a sum-safe aggregate argument: every value it produces
// is exactly representable (dyadic floats of bounded magnitude, bounded
// ints), so partial-sum merge order across morsels cannot change SUM/AVG.
// Division, float Mod, and int products (which can exceed 2^53 and go
// inexact through AVG's float accumulator) are projection/predicate-only.
func genAggArg(r *rand.Rand, scope []colRef) expr.Expr {
	c, ok := pick(r, scope, func(c colRef) bool {
		return c.kind == types.KindInt || c.kind == types.KindFloat
	})
	if !ok {
		return &expr.Const{V: types.IntValue(int64(r.Intn(9)))}
	}
	base := fa(c.alias, c.name)
	switch r.Intn(4) {
	case 0:
		op := []expr.BinKind{expr.OpAdd, expr.OpSub}[r.Intn(2)]
		var rhs expr.Expr
		if c.kind == types.KindFloat {
			rhs = &expr.Const{V: types.FloatValue(genFloat(r))}
		} else {
			rhs = &expr.Const{V: types.IntValue(int64(r.Intn(13) - 6))}
		}
		return &expr.BinOp{Op: op, L: base, R: rhs}
	case 1:
		if c2, ok := pick(r, scope, func(x colRef) bool { return x.kind == c.kind }); ok {
			return &expr.BinOp{Op: expr.OpAdd, L: base, R: fa(c2.alias, c2.name)}
		}
		return base
	default:
		return base
	}
}

func genAgg(r *rand.Rand, scope []colRef, i int) aggSpec {
	alias := fmt.Sprintf("z%d", i)
	kinds := []expr.AggKind{expr.AggCount, expr.AggSum, expr.AggMin, expr.AggMax, expr.AggAvg}
	k := kinds[r.Intn(len(kinds))]
	if k == expr.AggCount {
		return aggSpec{kind: expr.AggCount, alias: alias}
	}
	if (k == expr.AggMin || k == expr.AggMax) && r.Intn(3) == 0 {
		if c, ok := pick(r, scope, func(c colRef) bool { return c.str }); ok {
			return aggSpec{kind: k, arg: fa(c.alias, c.name), alias: alias}
		}
	}
	return aggSpec{kind: k, arg: genAggArg(r, scope), alias: alias}
}

// genGroup fills key items and aggregates for a GROUP BY query.
func genGroup(r *rand.Rand, q *querySpec, scope []colRef) {
	var keys []colRef
	for _, c := range scope {
		if c.key {
			keys = append(keys, c)
		}
	}
	if len(keys) == 0 {
		// Degenerate scope: fall back to scalar aggregation.
		q.mode = modeAgg
		q.aggs = []aggSpec{genAgg(r, scope, 0)}
		return
	}
	r.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	nk := 1
	if len(keys) > 1 && r.Intn(3) == 0 {
		nk = 2
	}
	for i := 0; i < nk; i++ {
		e := fa(keys[i].alias, keys[i].name)
		q.keys = append(q.keys, e)
		q.items = append(q.items, item{e: e, alias: fmt.Sprintf("g%d", i)})
	}
	for i, n := 0, 1+r.Intn(2); i < n; i++ {
		q.aggs = append(q.aggs, genAgg(r, scope, i))
	}
}
