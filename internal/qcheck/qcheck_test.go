package qcheck

import (
	"flag"
	"testing"
)

// Repro workflow: a divergence report prints a one-line command such as
//
//	go test ./internal/qcheck -run 'TestQCheck$' -qcheck.useed=123 -qcheck.case=7
//
// which regenerates exactly that universe and query. -qcheck.seed rotates
// the whole run (CI's scheduled job passes a changing seed); -qcheck.noshrink
// skips minimization when a raw failure is wanted quickly.
var (
	flagSeed      = flag.Int64("qcheck.seed", 20260805, "master seed for the qcheck run")
	flagUniverses = flag.Int("qcheck.universes", 0, "number of universes (0 = default)")
	flagQueries   = flag.Int("qcheck.queries", 0, "queries per universe (0 = default)")
	flagUSeed     = flag.Int64("qcheck.useed", 0, "replay a single universe by derived seed")
	flagCase      = flag.Int("qcheck.case", -1, "replay a single case index (with -qcheck.useed)")
	flagNoShrink  = flag.Bool("qcheck.noshrink", false, "skip divergence minimization")
)

func optsFromFlags(t *testing.T) Options {
	return Options{
		Seed:         *flagSeed,
		Universes:    *flagUniverses,
		Queries:      *flagQueries,
		UniverseSeed: *flagUSeed,
		Case:         *flagCase,
		NoShrink:     *flagNoShrink,
		Log:          t.Logf,
	}
}

// TestQCheck is the smoke-level differential run: with defaults it
// cross-checks 12×44 = 528 generated queries against the Volcano oracle
// and across the full engine config matrix.
func TestQCheck(t *testing.T) {
	opts := optsFromFlags(t)
	if testing.Short() {
		opts.Universes, opts.Queries = 4, 16
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatalf("qcheck run failed: %v", err)
	}
	t.Log(FormatReport(rep))
	if rep.Executed == 0 {
		t.Fatalf("qcheck executed no queries (all %d cases rejected?)", rep.Cases)
	}
	// The generator is valid-by-construction; a high rejection rate means it
	// has drifted from the engine's grammar and coverage is silently lost.
	if rep.Rejected*10 > rep.Cases {
		t.Errorf("qcheck rejected %d/%d cases (>10%%): generator drift", rep.Rejected, rep.Cases)
	}
	for _, d := range rep.Divergences {
		t.Errorf("%s", d.String())
	}
}

// TestQCheckDeterministic replays the same seed twice and requires
// identical outcome digests: every divergence must be reproducible from
// its printed seed alone.
func TestQCheckDeterministic(t *testing.T) {
	opts := Options{Seed: 7, Universes: 2, Queries: 10, NoShrink: true, Log: t.Logf}
	a, err := Run(opts)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("same seed produced different digests: %x vs %x", a.Digest, b.Digest)
	}
	if a.Cases != b.Cases || a.Executed != b.Executed || a.Rejected != b.Rejected {
		t.Fatalf("same seed produced different counts: %+v vs %+v", a, b)
	}
}
