// Random universe generation: schemas, datasets, and their truth rows.
//
// Every choice flows from a single int64 seed through math/rand, so a
// universe is reproducible from its seed alone. Data is designed so that
// every execution mode must produce bit-identical answers:
//
//   - floats are dyadic rationals (i + j/4, |i| ≤ 512): they round-trip
//     exactly through decimal serialization and their partial sums are
//     exact, so parallel merge order cannot change aggregate results;
//   - ints stay within ±10^10 so int→float promotions (AVG) are exact;
//   - key columns (join/group candidates) draw from small domains to force
//     collisions, and are never floats (−0.0 vs 0.0 hash apart but compare
//     equal, a trap this harness sidesteps by construction);
//   - strings mix ASCII, RFC-4180 triggers (delimiters, quotes, CR/LF),
//     and multi-byte unicode including surrogate-pair escapes, but never
//     NUL (the Volcano group-key separator) or single quotes (the SQL
//     lexer has no escape syntax).
//
// CSV and binary tables are never nullable (the formats cannot represent
// NULL); JSON tables are, per column, with varying probability.
package qcheck

import (
	"fmt"
	"math/rand"

	"proteus/internal/plugin"
	"proteus/internal/types"
)

// mix derives a child seed from a parent seed and an index (splitmix64
// finalizer), keeping every component independently reproducible.
func mix(seed, idx int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & 0x7fffffffffffffff)
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// qColumn is one generated column.
type qColumn struct {
	Name     string
	Kind     types.Kind
	Key      bool    // small domain; safe as join/group key
	NullProb float64 // JSON tables only; 1.0 makes the column all-NULL
	Const    bool    // every row holds the same value (degenerate zone maps)
}

// nestedCol is the optional nested list-of-records column of a JSON table.
type nestedCol struct {
	Name string // field name in the record
	// Elements are records {p: int, q: string}.
}

// qTable is one generated dataset: schema, truth rows, and the serialized
// file image the engines parse.
type qTable struct {
	Name   string
	Format string // "csv", "json", "bin"
	Cols   []qColumn
	Nested *nestedCol
	Opts   plugin.Options
	CRLF   bool // CSV: terminate rows with \r\n
	Array  bool // JSON: one top-level array instead of NDJSON
	Rows   []types.Value
	Schema *types.RecordType
	Data   []byte
}

// universe is a set of tables sharing one seed.
type universe struct {
	Seed   int64
	Tables []*qTable
}

func (u *universe) table(name string) *qTable {
	for _, t := range u.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

var keyStrings = []string{"ash", "birch", "cedar", "oak", "pine", "elm"}

var valueStrings = []string{
	"", "plain", "word list", "comma,inside", `quote "double" here`,
	"line\nbreak", "crlf\r\nrow", "pipe|field", "trailing space ",
	"héllo wörld", "naïve café", "日本語テキスト", "πρόταση", "emoji 🙂 data",
	"mixed Ωmega √2", "tab\tsep", "'single'",
}

// genString draws a value string; csvSafe excludes nothing extra (the CSV
// writer quotes), but literals used in predicates must come from
// likeNeedles instead.
func genString(r *rand.Rand) string {
	return valueStrings[r.Intn(len(valueStrings))]
}

// likeNeedles are predicate-literal-safe substrings (no quotes, ASCII).
var likeNeedles = []string{"a", "e", "in", "or", "data", "x", "li", "o"}

// prefixNeedles are predicate-literal-safe LIKE 'p%' prefixes, aimed at the
// key-string and value-string domains (plus misses like "zz") so the
// vectorized prefix kernel and the dictionary-code path see hits, misses,
// and partial matches.
var prefixNeedles = []string{"a", "b", "ce", "oa", "pi", "el", "pl", "li", "data", "zz"}

// genInt draws an int value: biased small, with occasional large-but-safe
// magnitudes (|v| ≤ 10^10 keeps float promotion exact).
func genInt(r *rand.Rand) int64 {
	switch r.Intn(10) {
	case 0:
		return 0
	case 1:
		return int64(1e10) * int64(1-2*r.Intn(2))
	case 2:
		return int64(r.Intn(2000001) - 1000000)
	default:
		return int64(r.Intn(51) - 25)
	}
}

// genFloat draws a dyadic rational i + j/4 with |i| ≤ 512 (never −0.0).
func genFloat(r *rand.Rand) float64 {
	i := r.Intn(1025) - 512
	j := r.Intn(4)
	f := float64(i) + float64(j)/4
	if f == 0 {
		return 0 // normalize: never emit −0.0
	}
	return f
}

// genValue draws a value of the column's kind (never NULL; the caller rolls
// nullability separately).
func genValue(r *rand.Rand, c qColumn) types.Value {
	if c.Const {
		// Constant columns collapse the zone map to a single-point range and
		// the bitmap index to one key — both degenerate paths worth fuzzing.
		switch c.Kind {
		case types.KindInt:
			return types.IntValue(42)
		case types.KindFloat:
			return types.FloatValue(2.5)
		case types.KindBool:
			return types.BoolValue(true)
		case types.KindString:
			return types.StringValue("cedar")
		}
	}
	if c.Key {
		switch c.Kind {
		case types.KindInt:
			return types.IntValue(int64(r.Intn(8)))
		case types.KindString:
			return types.StringValue(keyStrings[r.Intn(len(keyStrings))])
		case types.KindBool:
			return types.BoolValue(r.Intn(2) == 0)
		}
	}
	switch c.Kind {
	case types.KindInt:
		return types.IntValue(genInt(r))
	case types.KindFloat:
		return types.FloatValue(genFloat(r))
	case types.KindBool:
		return types.BoolValue(r.Intn(2) == 0)
	case types.KindString:
		return types.StringValue(genString(r))
	}
	panic("qcheck: unreachable column kind")
}

func kindType(k types.Kind) types.Type {
	switch k {
	case types.KindInt:
		return types.Int
	case types.KindFloat:
		return types.Float
	case types.KindBool:
		return types.Bool
	case types.KindString:
		return types.String
	}
	panic("qcheck: unreachable kind")
}

var nestedElemType = &types.RecordType{Fields: []types.Field{
	{Name: "p", Type: types.Int},
	{Name: "q", Type: types.String},
}}

// genUniverse builds 2–3 tables with schemas, rows, and serialized images.
func genUniverse(seed int64) (*universe, error) {
	r := newRand(seed)
	u := &universe{Seed: seed}
	nTables := 2 + r.Intn(2)
	formats := []string{"csv", "json", "bin"}
	// Guarantee format variety: shuffle, then round-robin.
	r.Shuffle(len(formats), func(i, j int) { formats[i], formats[j] = formats[j], formats[i] })
	for ti := 0; ti < nTables; ti++ {
		t := genTable(r, fmt.Sprintf("t%d", ti), formats[ti%len(formats)])
		if err := serializeTable(t); err != nil {
			return nil, fmt.Errorf("qcheck: universe %d table %s: %w", seed, t.Name, err)
		}
		u.Tables = append(u.Tables, t)
	}
	return u, nil
}

func genTable(r *rand.Rand, name, format string) *qTable {
	t := &qTable{Name: name, Format: format}
	nullable := format == "json"

	// Key columns: 1–2 int keys, optionally a string key.
	nIntKeys := 1 + r.Intn(2)
	for i := 0; i < nIntKeys; i++ {
		c := qColumn{Name: fmt.Sprintf("k%d", i), Kind: types.KindInt, Key: true}
		if nullable && r.Intn(4) == 0 {
			c.NullProb = 0.15
		}
		t.Cols = append(t.Cols, c)
	}
	if r.Intn(2) == 0 {
		t.Cols = append(t.Cols, qColumn{Name: "ks", Kind: types.KindString, Key: true})
	}
	// Value columns: 1–3 of random kinds.
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindBool, types.KindString}
	nVals := 1 + r.Intn(3)
	for i := 0; i < nVals; i++ {
		c := qColumn{Name: fmt.Sprintf("v%d", i), Kind: kinds[r.Intn(len(kinds))]}
		if nullable {
			// 1.0 yields an all-NULL column: its zone maps carry no range and
			// must skip every comparison without losing IS NULL rows.
			c.NullProb = []float64{0, 0.2, 0.5, 1}[r.Intn(4)]
		}
		if c.NullProb == 0 && r.Intn(8) == 0 {
			c.Const = true
		}
		t.Cols = append(t.Cols, c)
	}
	if format == "json" && r.Intn(2) == 0 {
		t.Nested = &nestedCol{Name: "items"}
	}

	// Format quirks.
	switch format {
	case "csv":
		if r.Intn(3) == 0 {
			t.Opts.Delimiter = '|'
		}
		t.CRLF = r.Intn(3) == 0
	case "json":
		t.Array = r.Intn(2) == 0
	case "bin":
		t.Opts.Columnar = r.Intn(2) == 0
	}

	// Schema (explicit for csv/json; bin files are self-describing but the
	// schema is still recorded for query generation).
	fields := make([]types.Field, 0, len(t.Cols)+1)
	for _, c := range t.Cols {
		fields = append(fields, types.Field{Name: c.Name, Type: kindType(c.Kind)})
	}
	if t.Nested != nil {
		fields = append(fields, types.Field{Name: t.Nested.Name, Type: types.NewListType(nestedElemType)})
	}
	t.Schema = &types.RecordType{Fields: fields}

	// Rows: occasionally empty or single-row, else 2–40.
	var n int
	switch r.Intn(10) {
	case 0:
		n = 0
	case 1:
		n = 1
	default:
		n = 2 + r.Intn(39)
	}
	names := t.Schema.Names()
	for i := 0; i < n; i++ {
		vals := make([]types.Value, 0, len(names))
		for _, c := range t.Cols {
			if c.NullProb > 0 && r.Float64() < c.NullProb {
				vals = append(vals, types.NullValue())
				continue
			}
			vals = append(vals, genValue(r, c))
		}
		if t.Nested != nil {
			m := r.Intn(4)
			elems := make([]types.Value, 0, m)
			for j := 0; j < m; j++ {
				elems = append(elems, types.RecordValue(
					[]string{"p", "q"},
					[]types.Value{
						types.IntValue(int64(r.Intn(10))),
						types.StringValue(keyStrings[r.Intn(len(keyStrings))]),
					}))
			}
			vals = append(vals, types.ListValue(elems...))
		}
		t.Rows = append(t.Rows, types.RecordValue(names, vals))
	}
	return t
}
