// Divergence minimization. Given a diverging (universe, query, config)
// triple, shrink first the data (ddmin-style contiguous row-chunk removal
// per table, re-serializing after every removal so the engines parse the
// reduced files) and then the query (dropping LIMIT, ORDER BY, WHERE
// conjuncts, projection items, aggregates, group keys, and unreferenced
// join/unnest sources), keeping each reduction only while the divergence
// still reproduces on fresh engines. The whole search is bounded by a
// check budget so a pathological case cannot stall the run.
package qcheck

import (
	"fmt"
	"strings"

	"proteus/internal/expr"
	"proteus/internal/types"
)

const shrinkBudget = 160 // max reproduction attempts per divergence

func cloneUniverse(u *universe) *universe {
	out := &universe{Seed: u.Seed}
	for _, t := range u.Tables {
		tc := *t
		tc.Rows = append([]types.Value(nil), t.Rows...)
		out.Tables = append(out.Tables, &tc)
	}
	return out
}

// checkDiverges rebuilds everything from scratch and reports whether the
// case still shows any disagreement for the given config.
func checkDiverges(u *universe, spec *querySpec, cfg engConfig, budget *int) bool {
	if *budget <= 0 {
		return false
	}
	*budget--
	for _, t := range u.Tables {
		if err := serializeTable(t); err != nil {
			return false
		}
	}
	text := spec.render()
	oracle, c, oerr := runOracle(u, spec.lang, text)

	baseEng, err := buildEngine(configMatrix()[0].cfg, u)
	if err != nil {
		return false
	}
	base, berr := runEngineQuery(baseEng, spec.lang, text)

	if (oerr != nil) != (berr != nil) {
		return true
	}
	if oerr != nil { // both reject: divergence only if cfg accepts
		if cfg.name == "base" {
			return false
		}
		r, err := buildRunner(cfg, u)
		if err != nil {
			return false
		}
		_, cerr := runConfig(r.eng, cfg, spec.lang, text)
		if r.close != nil {
			r.close()
		}
		return cerr == nil
	}
	if d := compareOracle(oracle, base, c.OrderBy, c.Limit); d != "" {
		return true
	}
	if cfg.name == "base" {
		return false
	}
	r, err := buildRunner(cfg, u)
	if err != nil {
		return false
	}
	if r.close != nil {
		defer r.close()
	}
	results, cerr := runConfig(r.eng, cfg, spec.lang, text)
	if cerr != nil {
		return true
	}
	exact := spec.exactOrder()
	for _, res := range results {
		if exact {
			if compareExact(base, res) != "" {
				return true
			}
		} else if compareOracle(oracle, res, c.OrderBy, c.Limit) != "" {
			return true
		}
	}
	return false
}

// shrink minimizes a diverging case and renders the reduced repro, or
// returns "" when the divergence does not reproduce on fresh engines
// (e.g. warm-cache-only effects).
func shrink(u *universe, spec *querySpec, cfg engConfig) string {
	budget := shrinkBudget
	cu := cloneUniverse(u)
	cs := spec.clone()
	if !checkDiverges(cu, cs, cfg, &budget) {
		return ""
	}
	shrinkRows(cu, cs, cfg, &budget)
	shrinkSpec(cu, cs, cfg, &budget)
	return dumpCase(cu, cs)
}

// shrinkRows removes contiguous row chunks per table while the divergence
// holds.
func shrinkRows(u *universe, spec *querySpec, cfg engConfig, budget *int) {
	for _, t := range u.Tables {
		for chunk := (len(t.Rows) + 1) / 2; chunk >= 1; chunk /= 2 {
			for i := 0; i < len(t.Rows); {
				if *budget <= 0 {
					return
				}
				saved := t.Rows
				end := i + chunk
				if end > len(t.Rows) {
					end = len(t.Rows)
				}
				t.Rows = append(append([]types.Value(nil), t.Rows[:i]...), t.Rows[end:]...)
				if checkDiverges(u, spec, cfg, budget) {
					continue // keep the removal; retry the same offset
				}
				t.Rows = saved
				i += chunk
			}
		}
	}
}

// refsIn collects every generator alias referenced by the spec's
// expressions (excluding the candidate expressions passed in skip).
func (q *querySpec) refsAlias(alias string, skip map[expr.Expr]bool) bool {
	found := false
	see := func(e expr.Expr) {
		if e == nil || skip[e] {
			return
		}
		expr.Walk(e, func(x expr.Expr) bool {
			if r, ok := x.(*expr.Ref); ok && r.Name == alias {
				found = true
			}
			return true
		})
	}
	for _, w := range q.where {
		see(w)
	}
	for _, it := range q.items {
		see(it.e)
	}
	for _, k := range q.keys {
		see(k)
	}
	for _, a := range q.aggs {
		see(a.arg)
	}
	if !skip[q.joinPred] {
		see(q.joinPred)
	}
	return found
}

// pruneOrderBy drops ORDER BY keys whose columns left the output.
func (q *querySpec) pruneOrderBy() {
	cols := map[string]bool{}
	for _, c := range q.orderableCols() {
		cols[c] = true
	}
	var kept []orderKey
	for _, o := range q.orderBy {
		if cols[o.col] {
			kept = append(kept, o)
		}
	}
	q.orderBy = kept
}

// shrinkSpec applies clause-dropping transforms until none makes progress.
func shrinkSpec(u *universe, spec *querySpec, cfg engConfig, budget *int) {
	try := func(mutate func(q *querySpec) bool) bool {
		if *budget <= 0 {
			return false
		}
		cand := spec.clone()
		if !mutate(cand) {
			return false
		}
		cand.pruneOrderBy()
		if !checkDiverges(u, cand, cfg, budget) {
			return false
		}
		*spec = *cand
		return true
	}
	for progress := true; progress; {
		progress = false
		if spec.limit > 0 {
			progress = try(func(q *querySpec) bool { q.limit = 0; return true }) || progress
		}
		if len(spec.orderBy) > 0 {
			progress = try(func(q *querySpec) bool { q.orderBy = nil; return true }) || progress
		}
		for i := range spec.where {
			i := i
			progress = try(func(q *querySpec) bool {
				if i >= len(q.where) {
					return false
				}
				q.where = append(q.where[:i:i], q.where[i+1:]...)
				return true
			}) || progress
		}
		if spec.mode == modeProject && len(spec.items) > 1 {
			for i := range spec.items {
				i := i
				progress = try(func(q *querySpec) bool {
					if len(q.items) < 2 || i >= len(q.items) {
						return false
					}
					q.items = append(q.items[:i:i], q.items[i+1:]...)
					return true
				}) || progress
			}
		}
		if len(spec.aggs) > 1 {
			for i := range spec.aggs {
				i := i
				progress = try(func(q *querySpec) bool {
					if len(q.aggs) < 2 || i >= len(q.aggs) {
						return false
					}
					q.aggs = append(q.aggs[:i:i], q.aggs[i+1:]...)
					return true
				}) || progress
			}
		}
		if spec.mode == modeGroup && len(spec.keys) > 1 {
			progress = try(func(q *querySpec) bool {
				q.keys = q.keys[:1]
				q.items = q.items[:1]
				return true
			}) || progress
		}
		if spec.unnest != "" && !spec.refsAlias("u", nil) {
			progress = try(func(q *querySpec) bool { q.unnest = ""; return true }) || progress
		}
		if len(spec.tables) == 2 && !spec.refsAlias("b", map[expr.Expr]bool{spec.joinPred: true}) {
			progress = try(func(q *querySpec) bool {
				q.tables = q.tables[:1]
				q.aliases = q.aliases[:1]
				q.joinPred = nil
				return true
			}) || progress
		}
	}
}

// dumpCase renders the minimized tables and query.
func dumpCase(u *universe, spec *querySpec) string {
	var b strings.Builder
	for _, t := range u.Tables {
		fmt.Fprintf(&b, "    table %s (%s, %d rows)", t.Name, t.Format, len(t.Rows))
		for i, row := range t.Rows {
			if i == 12 {
				fmt.Fprintf(&b, "\n      … %d more rows", len(t.Rows)-i)
				break
			}
			b.WriteString("\n      ")
			b.WriteString(clip(encodeRow(row), 200))
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "    query (%s): %s", spec.lang, spec.render())
	return b.String()
}
