// Rendering of querySpecs into SQL and comprehension source text. The
// harness always round-trips through text: both the engines and the
// Volcano oracle parse the rendered string, so the front-end parsers are
// inside the differential loop too.
package qcheck

import (
	"fmt"
	"strconv"
	"strings"

	"proteus/internal/expr"
	"proteus/internal/types"
)

// renderExpr emits fully parenthesized expression text that parses back to
// an equivalent tree in both front-ends. NOT(IsNull) renders as IS NOT NULL.
func renderExpr(e expr.Expr) string {
	switch x := e.(type) {
	case *expr.Const:
		switch x.V.Kind {
		case types.KindInt:
			return strconv.FormatInt(x.V.I, 10)
		case types.KindFloat:
			s := formatFloat(x.V.F)
			if !strings.Contains(s, ".") {
				s += ".0"
			}
			return s
		case types.KindBool:
			if x.V.Bool() {
				return "TRUE"
			}
			return "FALSE"
		case types.KindString:
			return "'" + x.V.S + "'" // generated literals never contain '
		}
	case *expr.Ref:
		return x.Name
	case *expr.FieldAcc:
		return renderExpr(x.Base) + "." + x.Name
	case *expr.Neg:
		return "(0 - " + renderExpr(x.E) + ")"
	case *expr.Not:
		if in, ok := x.E.(*expr.IsNull); ok {
			return "(" + renderExpr(in.E) + " IS NOT NULL)"
		}
		return "(NOT " + renderExpr(x.E) + ")"
	case *expr.IsNull:
		return "(" + renderExpr(x.E) + " IS NULL)"
	case *expr.Like:
		if x.Prefix {
			return "(" + renderExpr(x.E) + " LIKE '" + x.Needle + "%')"
		}
		return "(" + renderExpr(x.E) + " LIKE '%" + x.Needle + "%')"
	case *expr.BinOp:
		op := map[expr.BinKind]string{
			expr.OpAdd: "+", expr.OpSub: "-", expr.OpMul: "*",
			expr.OpDiv: "/", expr.OpMod: "%",
			expr.OpEq: "=", expr.OpNe: "<>", expr.OpLt: "<",
			expr.OpLe: "<=", expr.OpGt: ">", expr.OpGe: ">=",
			expr.OpAnd: "AND", expr.OpOr: "OR",
		}[x.Op]
		return "(" + renderExpr(x.L) + " " + op + " " + renderExpr(x.R) + ")"
	}
	panic(fmt.Sprintf("qcheck: unrenderable expr %T", e))
}

func renderAgg(a aggSpec) string {
	if a.kind == expr.AggCount {
		return "COUNT(*)"
	}
	name := map[expr.AggKind]string{
		expr.AggSum: "SUM", expr.AggMin: "MIN", expr.AggMax: "MAX", expr.AggAvg: "AVG",
	}[a.kind]
	return name + "(" + renderExpr(a.arg) + ")"
}

// render emits the query text in the spec's language.
func (q *querySpec) render() string {
	if q.lang == "comp" {
		return q.renderComp()
	}
	return q.renderSQL()
}

func (q *querySpec) renderSQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	var cols []string
	switch q.mode {
	case modeProject:
		for _, it := range q.items {
			cols = append(cols, renderExpr(it.e)+" AS "+it.alias)
		}
	case modeAgg:
		for _, a := range q.aggs {
			cols = append(cols, renderAgg(a)+" AS "+a.alias)
		}
	case modeGroup:
		for _, it := range q.items {
			cols = append(cols, renderExpr(it.e)+" AS "+it.alias)
		}
		for _, a := range q.aggs {
			cols = append(cols, renderAgg(a)+" AS "+a.alias)
		}
	}
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString(" FROM " + q.tables[0] + " AS " + q.aliases[0])
	if len(q.tables) == 2 {
		b.WriteString(" JOIN " + q.tables[1] + " AS " + q.aliases[1] +
			" ON " + renderExpr(q.joinPred))
	}
	if len(q.where) > 0 {
		var parts []string
		for _, w := range q.where {
			parts = append(parts, renderExpr(w))
		}
		b.WriteString(" WHERE " + strings.Join(parts, " AND "))
	}
	if q.mode == modeGroup {
		var ks []string
		for _, k := range q.keys {
			ks = append(ks, renderExpr(k))
		}
		b.WriteString(" GROUP BY " + strings.Join(ks, ", "))
	}
	if len(q.orderBy) > 0 {
		var os []string
		for _, o := range q.orderBy {
			dir := " ASC"
			if o.desc {
				dir = " DESC"
			}
			os = append(os, o.col+dir)
		}
		b.WriteString(" ORDER BY " + strings.Join(os, ", "))
	}
	if q.limit > 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(q.limit))
	}
	return b.String()
}

func (q *querySpec) renderComp() string {
	var quals []string
	for i, t := range q.tables {
		quals = append(quals, q.aliases[i]+" <- "+t)
	}
	if q.unnest != "" {
		quals = append(quals, "u <- "+q.aliases[0]+"."+q.unnest)
	}
	if q.joinPred != nil {
		quals = append(quals, renderExpr(q.joinPred))
	}
	for _, w := range q.where {
		quals = append(quals, renderExpr(w))
	}
	var b strings.Builder
	b.WriteString("for { " + strings.Join(quals, ", ") + " } yield ")
	if q.mode == modeAgg {
		a := q.aggs[0]
		switch a.kind {
		case expr.AggCount:
			b.WriteString("count")
		case expr.AggSum:
			b.WriteString("sum " + renderExpr(a.arg))
		case expr.AggMin:
			b.WriteString("min " + renderExpr(a.arg))
		case expr.AggMax:
			b.WriteString("max " + renderExpr(a.arg))
		case expr.AggAvg:
			b.WriteString("avg " + renderExpr(a.arg))
		}
		return b.String()
	}
	// Projection: bag of a record (names derive from path tails).
	var parts []string
	for _, it := range q.items {
		parts = append(parts, renderExpr(it.e))
	}
	b.WriteString("bag (" + strings.Join(parts, ", ") + ")")
	return b.String()
}
