// Result normalization and comparison.
//
// Rows are compared through a kind-tagged canonical encoding (so int 1,
// float 1.0, bool true, and string "1" never collide, and −0.0 folds into
// 0.0). Two comparison tiers apply:
//
//   - engine vs. engine: exact ordered equality — every execution mode is
//     required to produce byte-identical output in identical order;
//   - oracle vs. engine: multiset equality, tightened to ORDER BY
//     key-sequence equality when the query is ordered (ties may break
//     differently between a stable sort over different underlying orders),
//     and loosened under LIMIT-without-ORDER BY to "right count + sub-
//     multiset of the unlimited oracle result" (any prefix is acceptable).
package qcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"proteus/internal/types"
)

func encodeValue(b *strings.Builder, v types.Value) {
	switch v.Kind {
	case types.KindNull:
		b.WriteString("N")
	case types.KindInt:
		b.WriteString("I")
		b.WriteString(strconv.FormatInt(v.I, 10))
	case types.KindFloat:
		f := v.F
		if f == 0 {
			f = 0 // fold −0.0
		}
		b.WriteString("F")
		b.WriteString(strconv.FormatFloat(f, 'g', -1, 64))
	case types.KindBool:
		if v.Bool() {
			b.WriteString("B1")
		} else {
			b.WriteString("B0")
		}
	case types.KindString:
		b.WriteString("S")
		b.WriteString(strconv.Itoa(len(v.S)))
		b.WriteString(":")
		b.WriteString(v.S)
	case types.KindRecord:
		b.WriteString("R{")
		for i, n := range v.Rec.Names {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(n)
			b.WriteString("=")
			encodeValue(b, v.Rec.Values[i])
		}
		b.WriteString("}")
	case types.KindList, types.KindBag:
		b.WriteString("L[")
		for i, e := range v.Elems {
			if i > 0 {
				b.WriteString(";")
			}
			encodeValue(b, e)
		}
		b.WriteString("]")
	default:
		fmt.Fprintf(b, "?%d", v.Kind)
	}
}

func encodeRow(v types.Value) string {
	var b strings.Builder
	encodeValue(&b, v)
	return b.String()
}

func encodeRows(rows []types.Value) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = encodeRow(r)
	}
	return out
}

func clip(s string, n int) string {
	if len(s) > n {
		return s[:n] + "…"
	}
	return s
}

// compareExact requires identical columns, row order, and row content.
func compareExact(want, got *resultSet) string {
	if len(want.Rows) != len(got.Rows) {
		return fmt.Sprintf("row count %d vs %d", len(want.Rows), len(got.Rows))
	}
	for i := range want.Rows {
		a, b := encodeRow(want.Rows[i]), encodeRow(got.Rows[i])
		if a != b {
			return fmt.Sprintf("row %d: %s vs %s", i, clip(a, 200), clip(b, 200))
		}
	}
	return ""
}

// compareMultiset requires equal row multisets regardless of order.
func compareMultiset(want, got []types.Value) string {
	if len(want) != len(got) {
		return fmt.Sprintf("row count %d vs %d", len(want), len(got))
	}
	a, b := encodeRows(want), encodeRows(got)
	sort.Strings(a)
	sort.Strings(b)
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("multiset differs at sorted position %d: %s vs %s",
				i, clip(a[i], 200), clip(b[i], 200))
		}
	}
	return ""
}

// subMultiset reports "" when every row of sub (with multiplicity) appears
// in super.
func subMultiset(sub, super []types.Value) string {
	counts := map[string]int{}
	for _, r := range super {
		counts[encodeRow(r)]++
	}
	for _, r := range sub {
		k := encodeRow(r)
		if counts[k] == 0 {
			return fmt.Sprintf("row not in oracle result: %s", clip(k, 200))
		}
		counts[k]--
	}
	return ""
}

// compareKeySeq requires identical ORDER BY key sequences.
func compareKeySeq(want, got []types.Value, orderBy []string) string {
	if len(want) != len(got) {
		return fmt.Sprintf("row count %d vs %d", len(want), len(got))
	}
	for i := range want {
		a, b := orderKeyOf(want[i], orderBy), orderKeyOf(got[i], orderBy)
		if a != b {
			return fmt.Sprintf("ORDER BY key differs at row %d: %s vs %s",
				i, clip(a, 120), clip(b, 120))
		}
	}
	return ""
}

// oracleResult pairs the oracle's limited output with its pre-LIMIT rows.
type oracleResult struct {
	res *resultSet
	all []types.Value // post-sort, pre-LIMIT
}

// compareOracle checks an engine result against the oracle under the tier
// rules described in the package comment.
func compareOracle(o *oracleResult, got *resultSet, orderBy []string, limit int) string {
	switch {
	case limit > 0 && len(orderBy) > 0:
		return compareKeySeq(o.res.Rows, got.Rows, orderBy)
	case limit > 0:
		if len(got.Rows) != len(o.res.Rows) {
			return fmt.Sprintf("row count %d vs %d (limit %d)", len(o.res.Rows), len(got.Rows), limit)
		}
		return subMultiset(got.Rows, o.all)
	case len(orderBy) > 0:
		if d := compareKeySeq(o.res.Rows, got.Rows, orderBy); d != "" {
			return d
		}
		return compareMultiset(o.res.Rows, got.Rows)
	default:
		return compareMultiset(o.res.Rows, got.Rows)
	}
}
