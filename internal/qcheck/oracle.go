// The Volcano oracle: parse the rendered query text, resolve and translate
// it exactly as the engine front-end does, then interpret the plan with the
// baseline tuple-at-a-time interpreter over the generated truth rows —
// bypassing the raw-data parsers, the optimizer, the compiler, every
// execution mode, and the caches. Anything those layers get wrong shows up
// as a divergence from this path.
package qcheck

import (
	"fmt"
	"sort"
	"strings"

	"proteus/internal/baseline/volcano"
	"proteus/internal/calculus"
	"proteus/internal/comp"
	"proteus/internal/sql"
	"proteus/internal/types"
)

// resultSet is the normalized shape shared by engine and oracle results.
type resultSet struct {
	Cols []string
	Rows []types.Value
}

func parseQuery(lang, text string, cat calculus.Catalog) (*calculus.Comprehension, error) {
	var (
		c   *calculus.Comprehension
		err error
	)
	if lang == "comp" {
		c, err = comp.Parse(text)
	} else {
		c, err = sql.Parse(text)
	}
	if err != nil {
		return nil, err
	}
	if err := calculus.ResolveColumns(c, cat); err != nil {
		return nil, err
	}
	return c, nil
}

// runOracle executes the query text against the universe's truth rows. The
// returned oracleResult keeps both the final rows and the pre-LIMIT rows
// (sub-multiset checks under LIMIT-without-ORDER BY need the latter). It
// also hands back the parsed comprehension so the caller can read the
// authoritative ORDER BY / LIMIT clauses.
func runOracle(u *universe, lang, text string) (*oracleResult, *calculus.Comprehension, error) {
	cat := calculus.MapCatalog{}
	vol := volcano.New()
	for _, t := range u.Tables {
		cat[t.Name] = t.Schema
		vol.Load(t.Name, t.Rows)
	}
	c, err := parseQuery(lang, text, cat)
	if err != nil {
		return nil, nil, err
	}
	plan, err := calculus.Translate(calculus.Normalize(c), cat)
	if err != nil {
		return nil, nil, err
	}
	res, err := vol.RunPlan(plan)
	if err != nil {
		return nil, nil, err
	}
	all, err := applyOrderLimit(res.Rows, res.Cols, c.OrderBy, c.OrderDesc, 0)
	if err != nil {
		return nil, nil, err
	}
	limited := all
	if c.Limit > 0 && len(limited) > c.Limit {
		limited = limited[:c.Limit]
	}
	return &oracleResult{
		res: &resultSet{Cols: res.Cols, Rows: limited},
		all: all,
	}, c, nil
}

// applyOrderLimit replicates engine.orderAndLimit over boxed rows: stable
// sort on named output columns (missing fields compare as zero values, as
// Value.Field returns on non-records), then truncation.
func applyOrderLimit(rows []types.Value, cols, orderBy []string, desc []bool, limit int) ([]types.Value, error) {
	out := append([]types.Value(nil), rows...)
	if len(orderBy) > 0 {
		for _, col := range orderBy {
			found := false
			for _, c := range cols {
				if c == col {
					found = true
				}
			}
			if !found && len(out) > 0 {
				_, found = out[0].Field(col)
			}
			if !found {
				if len(out) == 0 {
					continue
				}
				return nil, fmt.Errorf("ORDER BY column %q is not in the output (%v)", col, cols)
			}
		}
		sort.SliceStable(out, func(i, j int) bool {
			for k, col := range orderBy {
				a, _ := out[i].Field(col)
				b, _ := out[j].Field(col)
				c := types.Compare(a, b)
				if c == 0 {
					continue
				}
				if k < len(desc) && desc[k] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// orderKeyOf extracts the ORDER BY key tuple of a row as a canonical string,
// for prefix/sequence comparisons under LIMIT.
func orderKeyOf(row types.Value, orderBy []string) string {
	var b strings.Builder
	for _, col := range orderBy {
		v, _ := row.Field(col)
		encodeValue(&b, v)
		b.WriteByte('\x1f')
	}
	return b.String()
}
