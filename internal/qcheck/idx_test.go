package qcheck

import (
	"testing"

	"proteus/internal/cache"
	"proteus/internal/engine"
	"proteus/internal/exec"
)

// TestIndexEquivalence is the indexed-vs-unindexed differential check on
// fixed seeds, sized for CI's -race job: for each universe it runs every
// generated query three times on a forced-indexes engine and a no-indexes
// engine and requires byte-identical results on every run. The repeated
// runs matter — the first populates the byte cache, the second builds and
// uses bitmap indexes (recompiling via the cache-epoch bump), the third
// replays from the plan cache over the indexed blocks.
func TestIndexEquivalence(t *testing.T) {
	seeds := []int64{101, 202, 303}
	queriesPer := 24
	if testing.Short() {
		seeds = seeds[:1]
		queriesPer = 10
	}
	mkCfg := func(mode cache.IndexMode) engine.Config {
		return engine.Config{
			Parallelism: 1, Vectorized: exec.VecOn,
			CacheEnabled: true, CacheStrings: true,
			Indexes: mode, PlanCacheSize: 64,
		}
	}
	for _, seed := range seeds {
		u, err := genUniverse(seed)
		if err != nil {
			t.Fatalf("universe %d: %v", seed, err)
		}
		on, err := buildEngine(mkCfg(cache.IndexOn), u)
		if err != nil {
			t.Fatalf("universe %d: build idx-on engine: %v", seed, err)
		}
		off, err := buildEngine(mkCfg(cache.IndexOff), u)
		if err != nil {
			t.Fatalf("universe %d: build idx-off engine: %v", seed, err)
		}
		for q := 0; q < queriesPer; q++ {
			spec := genQuery(mix(seed, int64(q)), u)
			text := spec.render()
			for run := 0; run < 3; run++ {
				rOn, errOn := runEngineQuery(on, spec.lang, text)
				rOff, errOff := runEngineQuery(off, spec.lang, text)
				if (errOn == nil) != (errOff == nil) {
					t.Fatalf("useed=%d case=%d run=%d: indexed err=%v, unindexed err=%v\n  query: %s",
						seed, q, run, errOn, errOff, text)
				}
				if errOn != nil {
					break // consistent rejection; nothing to compare
				}
				if d := compareExact(rOff, rOn); d != "" {
					t.Fatalf("useed=%d case=%d run=%d: indexed diverges from unindexed: %s\n  query: %s",
						seed, q, run, d, text)
				}
			}
		}
	}
}
