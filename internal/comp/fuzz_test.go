package comp

import "testing"

// FuzzParse asserts the comprehension parser is total: any input yields a
// comprehension or an error, never a panic. Inputs are capped so the
// recursive-descent depth stays bounded.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"",
		"for { a <- t } yield bag (a.x)",
		"for { a <- t, u <- a.items, (a.k = 1) } yield bag (a.x, u.p)",
		"for { a <- t, (a.v < 3.5) } yield sum a.v",
		"for { a <- t } yield count",
		"for { a <- t", "for { } yield", "yield bag", "for { a <- } yield count",
		"for { a <- t } yield bag (((", "\x00\xff for",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<12 {
			return
		}
		c, err := Parse(src)
		if err == nil && c == nil {
			t.Fatalf("Parse(%q): nil comprehension without error", src)
		}
	})
}
