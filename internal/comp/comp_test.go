package comp

import (
	"testing"

	"proteus/internal/expr"
)

func TestParseExample31(t *testing.T) {
	// The paper's Example 3.1, verbatim (modulo personnel elements being
	// ids, matched by p directly).
	c, err := Parse(`for { s1 <- Sailor, c <- s1.children, s2 <- Ship,
		p <- s2.personnel, s1.id = p.id, c.age > 18 }
		yield bag (s1.id, s2.name, c.name)`)
	if err != nil {
		t.Fatal(err)
	}
	var gens, filters int
	for _, q := range c.Quals {
		if q.IsGenerator() {
			gens++
		} else {
			filters++
		}
	}
	if gens != 4 {
		t.Errorf("generators = %d, want 4", gens)
	}
	if filters != 2 {
		t.Errorf("filters = %d, want 2", filters)
	}
	// Second generator is a path source.
	if _, ok := c.Quals[1].Source.(*expr.FieldAcc); !ok {
		t.Errorf("children source = %T", c.Quals[1].Source)
	}
	rc, ok := c.Head.(*expr.RecordCtor)
	if !ok {
		t.Fatalf("head = %T", c.Head)
	}
	// Duplicate tail names get deduplicated suffixes.
	if rc.Names[0] != "id" || rc.Names[1] != "name" || rc.Names[2] != "name_2" {
		t.Errorf("names = %v", rc.Names)
	}
	if c.Monoid != expr.AggBag {
		t.Errorf("monoid = %v", c.Monoid)
	}
}

func TestParseAggregateYields(t *testing.T) {
	cases := []struct {
		src  string
		kind expr.AggKind
	}{
		{"for { x <- T } yield sum x.v", expr.AggSum},
		{"for { x <- T } yield max x.v", expr.AggMax},
		{"for { x <- T } yield min x.v", expr.AggMin},
		{"for { x <- T } yield avg x.v", expr.AggAvg},
		{"for { x <- T } yield count", expr.AggCount},
	}
	for _, cse := range cases {
		c, err := Parse(cse.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", cse.src, err)
			continue
		}
		if len(c.Aggs) != 1 || c.Aggs[0].Kind != cse.kind {
			t.Errorf("Parse(%q) aggs = %v", cse.src, c.Aggs)
		}
	}
}

func TestParseListMonoid(t *testing.T) {
	c, err := Parse("for { x <- T } yield list x.v")
	if err != nil {
		t.Fatal(err)
	}
	if c.Monoid != expr.AggList {
		t.Errorf("monoid = %v", c.Monoid)
	}
}

func TestParseSingleExprYield(t *testing.T) {
	c, err := Parse("for { x <- T, x.a < 3 } yield bag x.b")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Head.(*expr.FieldAcc); !ok {
		t.Errorf("head = %T", c.Head)
	}
	// Parenthesized single expression stays bare too.
	c, err = Parse("for { x <- T } yield bag (x.b)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Head.(*expr.FieldAcc); !ok {
		t.Errorf("parenthesized single head = %T", c.Head)
	}
}

func TestParseParenDelimiters(t *testing.T) {
	c, err := Parse("for ( x <- T, x.a < 1 ) yield count")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Quals) != 2 {
		t.Errorf("quals = %d", len(c.Quals))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"yield count",
		"for { x <- T }",                      // missing yield
		"for { x <- T } yield explode x.v",    // unknown monoid
		"for { x <- T } yield bag (a, b",      // unterminated record
		"for { x <- T } yield count trailing", // trailing tokens
		"for x <- T } yield count",            // missing brace
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestGeneratorVsComparisonDisambiguation(t *testing.T) {
	// "x.a < -3" is a filter (comparison against a negative number applied
	// to a non-Ref left side); "y <- T" is a generator.
	c, err := Parse("for { y <- T, y.a < -3 } yield count")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Quals[0].IsGenerator() {
		t.Error("y <- T should be a generator")
	}
	if c.Quals[1].IsGenerator() {
		t.Error("y.a < -3 should be a filter")
	}
}
