// Package comp is the comprehension front-end of the engine (§3, Example
// 3.1): the query syntax Proteus exposes for manipulations beyond flat SQL,
// such as queries over nested collections and outputs containing nestings.
//
//	for { s1 <- Sailor, c <- s1.children, s2 <- Ship,
//	      p <- s2.personnel, s1.id = p.id, c.age > 18 }
//	yield bag (s1.id, s2.name, c.name)
//
// Yield clauses accept a monoid (bag, list, sum, max, min, avg, count) and
// an expression — a parenthesized list builds a record, optionally with
// explicit names ("id: s1.id"). Expressions reuse the SQL grammar.
package comp

import (
	"fmt"

	"proteus/internal/calculus"
	"proteus/internal/expr"
	"proteus/internal/sql"
)

// Parse parses one comprehension into the calculus form.
func Parse(src string) (*calculus.Comprehension, error) {
	s, err := sql.NewExprScanner(src)
	if err != nil {
		return nil, err
	}
	c := &calculus.Comprehension{}
	if err := s.Expect("for"); err != nil {
		return nil, fmt.Errorf("comp: %w", err)
	}
	if err := s.Expect("{"); err != nil {
		// Allow both "for { ... }" and "for ( ... )".
		if err2 := s.Expect("("); err2 != nil {
			return nil, fmt.Errorf("comp: %w", err)
		}
		if err := parseQuals(s, c, ")"); err != nil {
			return nil, err
		}
	} else {
		if err := parseQuals(s, c, "}"); err != nil {
			return nil, err
		}
	}
	if err := s.Expect("yield"); err != nil {
		return nil, fmt.Errorf("comp: %w", err)
	}
	if err := parseYield(s, c); err != nil {
		return nil, err
	}
	if !s.AtEOF() {
		return nil, fmt.Errorf("comp: trailing input %q after yield clause", s.Peek())
	}
	return calculus.Normalize(c), nil
}

// parseQuals parses the comma-separated generators and filters up to the
// closing delimiter.
func parseQuals(s *sql.ExprScanner, c *calculus.Comprehension, closing string) error {
	for {
		if s.Accept(closing) {
			return nil
		}
		// Generator: ident <- source. The arrow lexes as "<" "-" so detect
		// by parsing an expression and checking for "<-"; simpler: try
		// ident-lookahead via a checkpointed parse of "ident < -".
		e, err := s.ParseExpr()
		if err != nil {
			return fmt.Errorf("comp: %w", err)
		}
		// "x <- src" parses as the comparison x < (-src)... but only when
		// src is numeric-negatable; instead the grammar yields
		// BinOp{Lt, Ref{x}, Neg{src}}. Recognize and rewrite that shape.
		if b, ok := e.(*expr.BinOp); ok && b.Op == expr.OpLt {
			if ref, isRef := b.L.(*expr.Ref); isRef {
				if neg, isNeg := b.R.(*expr.Neg); isNeg {
					c.Quals = append(c.Quals, calculus.Qual{Var: ref.Name, Source: neg.E})
					if !s.Accept(",") {
						return s.Expect(closing)
					}
					continue
				}
			}
		}
		c.Quals = append(c.Quals, calculus.Qual{Pred: e})
		if !s.Accept(",") {
			return s.Expect(closing)
		}
	}
}

// parseYield parses the output clause: monoid + head expression.
func parseYield(s *sql.ExprScanner, c *calculus.Comprehension) error {
	monoid, err := s.Ident()
	if err != nil {
		return fmt.Errorf("comp: yield clause: %w", err)
	}
	switch monoid {
	case "bag", "list":
		kind := expr.AggBag
		if monoid == "list" {
			kind = expr.AggList
		}
		head, err := parseHead(s)
		if err != nil {
			return err
		}
		c.Monoid = kind
		c.Head = head
		return nil
	case "sum", "max", "min", "avg":
		kinds := map[string]expr.AggKind{
			"sum": expr.AggSum, "max": expr.AggMax, "min": expr.AggMin, "avg": expr.AggAvg,
		}
		arg, err := parseHead(s)
		if err != nil {
			return err
		}
		c.Aggs = []expr.Agg{{Kind: kinds[monoid], Arg: arg}}
		c.AggNames = []string{monoid}
		return nil
	case "count":
		c.Aggs = []expr.Agg{{Kind: expr.AggCount}}
		c.AggNames = []string{"count"}
		return nil
	default:
		return fmt.Errorf("comp: unknown yield monoid %q", monoid)
	}
}

// parseHead parses the yielded expression. A parenthesized comma list
// builds a record; entries may carry explicit "name:" labels.
func parseHead(s *sql.ExprScanner) (expr.Expr, error) {
	if !s.Accept("(") {
		e, err := s.ParseExpr()
		if err != nil {
			return nil, fmt.Errorf("comp: yield expression: %w", err)
		}
		return e, nil
	}
	var names []string
	var exprs []expr.Expr
	for {
		// Optional "name :" label — detected by parsing an expression and
		// checking whether a ":"-like shape follows is messy with the SQL
		// lexer (no ':' token), so labels use "name =" here? No: keep the
		// common unlabeled form and derive names from path tails.
		e, err := s.ParseExpr()
		if err != nil {
			return nil, fmt.Errorf("comp: yield record: %w", err)
		}
		exprs = append(exprs, e)
		names = append(names, "")
		if s.Accept(",") {
			continue
		}
		if err := s.Expect(")"); err != nil {
			return nil, fmt.Errorf("comp: %w", err)
		}
		break
	}
	if len(exprs) == 1 && names[0] == "" {
		return exprs[0], nil
	}
	used := map[string]int{}
	for i, e := range exprs {
		name := names[i]
		if name == "" {
			name = tailName(e, i)
		}
		if n, dup := used[name]; dup {
			used[name] = n + 1
			name = fmt.Sprintf("%s_%d", name, n+1)
		}
		used[name] = 1
		names[i] = name
	}
	return &expr.RecordCtor{Names: names, Exprs: exprs}, nil
}

func tailName(e expr.Expr, i int) string {
	if _, path, ok := expr.PathOf(e); ok && len(path) > 0 {
		return path[len(path)-1]
	}
	if r, ok := e.(*expr.Ref); ok {
		return r.Name
	}
	return fmt.Sprintf("col%d", i)
}
