// Fault-injection and concurrency tests for distributed execution: every
// scenario drives a real coordinator engine against real worker query
// services (httptest around internal/server), with faults injected by a
// proxy in front of one or all workers. The invariant under test is the
// package contract: a distributed query returns either the complete,
// locally-identical result or a clean error — never partial or duplicated
// rows — and every recovery path (retry, hedge, plan-mismatch fallback,
// cancellation) is visible in the cluster counters.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"proteus"
	"proteus/internal/cluster"
	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/plugin"
	"proteus/internal/server"
	"proteus/internal/types"
)

// Test data: t (60 rows, grouped), u (10 rows, join side), tiny (1 row —
// splits into a single morsel, so queries over it always run locally).
func tableCSV() []byte {
	var b bytes.Buffer
	for i := 1; i <= 60; i++ {
		fmt.Fprintf(&b, "%d,g%d,%d,%d.5\n", i, i%5, i*7%31, i%13)
	}
	return b.Bytes()
}

func joinCSV() []byte {
	var b bytes.Buffer
	for i := 1; i <= 10; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i*3, i*100)
	}
	return b.Bytes()
}

func tSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "grp", Type: types.String},
		types.Field{Name: "val", Type: types.Int},
		types.Field{Name: "f", Type: types.Float},
	)
}

func uSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
}

// registerData registers the test tables on one engine (worker or
// coordinator — identical catalogs keep plan fingerprints aligned).
func registerData(t *testing.T, e *engine.Engine) {
	t.Helper()
	reg := func(name string, data []byte, schema *types.RecordType) {
		path := "mem://cluster/" + name + ".csv"
		e.Mem().PutFile(path, data)
		if err := e.Register(name, path, "csv", schema, plugin.Options{}); err != nil {
			t.Fatalf("register %s: %v", name, err)
		}
	}
	reg("t", tableCSV(), tSchema())
	reg("u", joinCSV(), uSchema())
	reg("tiny", []byte("1,gx,2,3.5\n"), tSchema())
}

// newWorker builds one worker query service over a fresh DB and returns its
// base URL plus the worker's engine (for metrics assertions).
func newWorker(t *testing.T) (string, *engine.Engine) {
	t.Helper()
	db := proteus.Open(proteus.Config{Parallelism: 1})
	registerData(t, db.Engine())
	ts := httptest.NewServer(server.New(server.Config{DB: db}).Handler())
	t.Cleanup(ts.Close)
	return ts.URL, db.Engine()
}

// newCoordinator builds a coordinator engine scattering over the given
// worker URLs.
func newCoordinator(t *testing.T, cfg cluster.Config) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{Parallelism: 1, Cluster: cluster.New(cfg)})
	registerData(t, e)
	return e
}

// newLocal builds the reference single-node engine.
func newLocal(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Config{Parallelism: 1})
	registerData(t, e)
	return e
}

// faultProxy fronts one worker and injects a fault on the first request
// (or a delay on every request). Subsequent requests pass through.
type faultProxy struct {
	backend string
	mode    string // "truncate", "500", "429", "reset", "delay", "fail-always"
	delay   time.Duration

	mu    sync.Mutex
	calls int
}

func (p *faultProxy) callCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls
}

func (p *faultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.calls++
	first := p.calls == 1
	p.mu.Unlock()

	// Drain the body before any injected stall: with the body consumed the
	// server detects client disconnects and cancels r.Context(), so an
	// abandoned attempt releases the proxy (and the test's Close) promptly.
	body, _ := io.ReadAll(r.Body)

	switch {
	case p.mode == "fail-always":
		http.Error(w, "injected permanent failure", http.StatusInternalServerError)
		return
	case p.mode == "500" && first:
		http.Error(w, "injected 500", http.StatusInternalServerError)
		return
	case p.mode == "429" && first:
		http.Error(w, "injected 429", http.StatusTooManyRequests)
		return
	case p.mode == "reset" && first:
		panic(http.ErrAbortHandler) // aborts the TCP connection mid-request
	case p.mode == "delay":
		select {
		case <-time.After(p.delay):
		case <-r.Context().Done():
			return
		}
	}

	resp, err := http.Post(p.backend+r.URL.Path, r.Header.Get("Content-Type"), bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	if p.mode == "truncate" && first {
		// Worker death mid-NDJSON-stream: half a frame, then EOF. The missing
		// trailer makes the coordinator treat the attempt as failed, not as data.
		w.Write(data[:len(data)/2])
		return
	}
	w.Write(data)
}

// newFaultFront wraps a real worker with a fault-injecting proxy.
func newFaultFront(t *testing.T, mode string, delay time.Duration) (string, *faultProxy) {
	t.Helper()
	backend, _ := newWorker(t)
	p := &faultProxy{backend: backend, mode: mode, delay: delay}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return ts.URL, p
}

const groupQuery = "SELECT grp, COUNT(*), SUM(val), MIN(f) FROM t GROUP BY grp"

// checkAgainstLocal requires the distributed result to be byte-identical to
// single-node execution and to have actually been distributed.
func checkAgainstLocal(t *testing.T, local, coord *engine.Engine, query string) {
	t.Helper()
	want, err := local.QuerySQL(query)
	if err != nil {
		t.Fatalf("local %q: %v", query, err)
	}
	got, err := coord.QuerySQL(query)
	if err != nil {
		t.Fatalf("distributed %q: %v", query, err)
	}
	if got.Fragments == 0 {
		t.Fatalf("distributed %q: ran locally (0 fragments)", query)
	}
	if !reflect.DeepEqual(want.Cols, got.Cols) || !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("distributed %q diverges from local:\n  local: %v %v\n  dist:  %v %v",
			query, want.Cols, want.Rows, got.Cols, got.Rows)
	}
}

// TestFaultRetryFirstAttempt covers the transient first-attempt faults: the
// worker dies mid-stream, returns 429/500, or resets the connection. Each
// must cost exactly one visible retry and still produce the complete,
// locally-identical result.
func TestFaultRetryFirstAttempt(t *testing.T) {
	for _, mode := range []string{"truncate", "500", "429", "reset"} {
		t.Run(mode, func(t *testing.T) {
			flakyURL, proxy := newFaultFront(t, mode, 0)
			goodURL, _ := newWorker(t)
			coord := newCoordinator(t, cluster.Config{Workers: []string{flakyURL, goodURL}})
			local := newLocal(t)

			checkAgainstLocal(t, local, coord, groupQuery)

			m := coord.Metrics()
			if m.ClusterRetries < 1 {
				t.Errorf("mode %s: cluster_retries = %d, want >= 1", mode, m.ClusterRetries)
			}
			if m.ClusterErrors != 0 {
				t.Errorf("mode %s: cluster_errors = %d, want 0", mode, m.ClusterErrors)
			}
			if proxy.callCount() < 1 {
				t.Errorf("mode %s: fault proxy was never hit", mode)
			}
			// The fault healed: the next query distributes without retries.
			before := m.ClusterRetries
			checkAgainstLocal(t, local, coord, "SELECT COUNT(*), SUM(val) FROM t WHERE val > 10")
			if after := coord.Metrics().ClusterRetries; after != before {
				t.Errorf("mode %s: healed worker still caused retries (%d -> %d)", mode, before, after)
			}
		})
	}
}

// TestFaultHedgeSlowWorker delays one worker past the hedge threshold: the
// speculative attempt on the backup worker must win, and the query must
// finish far sooner than the injected delay.
func TestFaultHedgeSlowWorker(t *testing.T) {
	const lag = 3 * time.Second
	slowURL, _ := newFaultFront(t, "delay", lag)
	goodURL, _ := newWorker(t)
	coord := newCoordinator(t, cluster.Config{
		Workers:    []string{slowURL, goodURL},
		HedgeAfter: 10 * time.Millisecond,
	})
	local := newLocal(t)

	start := time.Now()
	checkAgainstLocal(t, local, coord, groupQuery)
	if elapsed := time.Since(start); elapsed > lag {
		t.Errorf("hedged query took %v, slower than the %v lag it should have dodged", elapsed, lag)
	}
	if m := coord.Metrics(); m.ClusterHedges < 1 {
		t.Errorf("cluster_hedges = %d, want >= 1", m.ClusterHedges)
	}
}

// TestFaultDoubleFailure fails every attempt of a fragment: the query must
// end in one clean error with no partial result, counted in cluster_errors.
func TestFaultDoubleFailure(t *testing.T) {
	badURL1, _ := newFaultFront(t, "fail-always", 0)
	badURL2, _ := newFaultFront(t, "fail-always", 0)
	coord := newCoordinator(t, cluster.Config{Workers: []string{badURL1, badURL2}})

	res, err := coord.QuerySQL(groupQuery)
	if err == nil {
		t.Fatalf("query over dead workers succeeded: %v", res)
	}
	if res != nil {
		t.Fatalf("failed distributed query returned a partial result: %v", res)
	}
	if !strings.Contains(err.Error(), "injected permanent failure") {
		t.Errorf("error does not surface the worker failure: %v", err)
	}
	if m := coord.Metrics(); m.ClusterErrors < 1 {
		t.Errorf("cluster_errors = %d, want >= 1", m.ClusterErrors)
	}
}

// TestFaultPlanMismatchFallsBack simulates catalog drift: a worker that
// refuses every fragment with 409 must push the whole query into transparent
// local execution — correct result, no error, cluster_fallbacks counted.
func TestFaultPlanMismatchFallsBack(t *testing.T) {
	mismatch := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"plan fingerprint mismatch"}`, http.StatusConflict)
	}))
	t.Cleanup(mismatch.Close)
	goodURL, _ := newWorker(t)
	coord := newCoordinator(t, cluster.Config{Workers: []string{mismatch.URL, goodURL}})
	local := newLocal(t)

	want, err := local.QuerySQL(groupQuery)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.QuerySQL(groupQuery)
	if err != nil {
		t.Fatalf("mismatch fallback failed the query: %v", err)
	}
	if got.Fragments != 0 {
		t.Errorf("fallback result claims %d fragments, want 0 (local)", got.Fragments)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("fallback result diverges from local: %v vs %v", want.Rows, got.Rows)
	}
	if m := coord.Metrics(); m.ClusterFallbacks < 1 {
		t.Errorf("cluster_fallbacks = %d, want >= 1", m.ClusterFallbacks)
	}
}

// TestFaultCancellationMidQuery cancels the caller while every fragment is
// stuck behind a slow worker: the query must fail promptly with the caller's
// cancellation (not a fragment error) and count into queries_cancelled.
func TestFaultCancellationMidQuery(t *testing.T) {
	slow1, _ := newFaultFront(t, "delay", 10*time.Second)
	slow2, _ := newFaultFront(t, "delay", 10*time.Second)
	coord := newCoordinator(t, cluster.Config{Workers: []string{slow1, slow2}})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := coord.QuerySQLContext(ctx, groupQuery)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled distributed query returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v to take effect", elapsed)
	}
	if m := coord.Metrics(); m.QueriesCancelled < 1 {
		t.Errorf("queries_cancelled = %d, want >= 1", m.QueriesCancelled)
	}
}

// TestClusterConcurrentQueries is the -race integration test: many
// goroutines share one coordinator, mixing distributed queries, queries
// that fall back to local execution (single-morsel table), and callers that
// disconnect mid-query. Every successful result must match the single-node
// answer regardless of interleaving.
func TestClusterConcurrentQueries(t *testing.T) {
	urls := make([]string, 3)
	for i := range urls {
		urls[i], _ = newWorker(t)
	}
	coord := newCoordinator(t, cluster.Config{Workers: urls})
	local := newLocal(t)

	queries := []string{
		groupQuery,
		"SELECT COUNT(*), SUM(val) FROM t WHERE val > 10",
		"SELECT id, val FROM t WHERE id < 20",
		"SELECT id, val FROM t ORDER BY val DESC LIMIT 7",
		"SELECT COUNT(*) FROM t a JOIN u b ON a.id = b.id",
		"SELECT COUNT(*) FROM tiny", // 1 morsel: always local fallback
	}
	want := make([]*exec.Result, len(queries))
	for i, q := range queries {
		res, err := local.QuerySQL(q)
		if err != nil {
			t.Fatalf("local %q: %v", q, err)
		}
		want[i] = res
	}

	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				qi := (g + it) % len(queries)
				ctx := context.Background()
				disconnect := (g+it)%3 == 0
				var cancel context.CancelFunc
				if disconnect {
					// Mid-query disconnect: a deadline short enough to race
					// the scatter. Either outcome is legal; a success must
					// still be the complete, correct result.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+g%3)*time.Millisecond)
				}
				res, err := coord.QuerySQLContext(ctx, queries[qi])
				if cancel != nil {
					cancel()
				}
				if err != nil {
					if disconnect && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
						continue
					}
					errs <- fmt.Errorf("goroutine %d iter %d %q: %v", g, it, queries[qi], err)
					continue
				}
				if !reflect.DeepEqual(res.Rows, want[qi].Rows) {
					errs <- fmt.Errorf("goroutine %d iter %d %q: rows diverge from local", g, it, queries[qi])
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m := coord.Metrics()
	if m.ClusterQueries == 0 {
		t.Error("no query executed distributed")
	}
	if m.ClusterErrors != 0 {
		t.Errorf("cluster_errors = %d, want 0 (cancellations must not count as cluster errors)", m.ClusterErrors)
	}
}
