// Package cluster lifts morsel-driven parallelism across processes: a
// coordinator partitions a plan's driving scan into per-worker morsel
// ranges (the same plugin.Partitioner split exec.CompileParallel uses
// in-process), scatters fragment requests to N proteusd workers over
// HTTP, and gathers their serialized partial states through
// exec.MergeState — the exact merge functions the single-node parallel
// path uses, so distributed results are byte-identical to local ones.
//
// Plan compilation stays local on every node (the paper's thesis:
// engines are customized per data source, so shipping plans would ship
// the wrong engine). The coordinator sends only (lang, query text,
// morsel range, plan fingerprint); each worker re-parses and re-plans
// against its own catalog and refuses the fragment with 409 when its
// plan fingerprint diverges — the coordinator then falls back to local
// execution rather than risk merging partials of a different plan.
//
// Failure semantics per fragment: one retry on the next worker in
// topology order, an optional hedge (the retry launched speculatively
// when the primary is slower than Config.HedgeAfter), then a clean
// error. A fragment response is either a complete NDJSON frame with a
// verified trailer or a failed attempt — truncated and malformed
// streams never contribute rows, so a distributed query returns either
// the full correct result or an error, never partial or duplicated
// data.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"proteus/internal/algebra"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/plugin"
)

// ErrPlanMismatch reports that a worker's locally compiled plan
// fingerprint differs from the coordinator's — its catalog or statistics
// have drifted. The coordinator treats this as "not clustered" and runs
// the query locally.
var ErrPlanMismatch = errors.New("cluster: worker plan fingerprint mismatch")

// Defaults for the scatter client.
const (
	DefaultFragmentTimeout = 30 * time.Second
	maxErrorBody           = 4 << 10
)

// Config configures a Coordinator.
type Config struct {
	// Workers is the initial topology: base URLs of worker engines
	// ("http://host:port"). More can join later via AddWorker.
	Workers []string
	// Client is the HTTP client used for fragment requests; nil uses a
	// dedicated client with sane connection pooling.
	Client *http.Client
	// FragmentTimeout bounds each fragment attempt (not the whole query —
	// the query context still applies). 0 means DefaultFragmentTimeout.
	FragmentTimeout time.Duration
	// HedgeAfter, when positive, launches the fragment's retry attempt
	// speculatively on the backup worker once the primary has been running
	// this long; the first complete response wins and the loser is
	// cancelled. 0 disables hedging.
	HedgeAfter time.Duration
}

// Coordinator scatters eligible plans across workers and gathers their
// partial states. Safe for concurrent use.
type Coordinator struct {
	client          *http.Client
	fragmentTimeout time.Duration
	hedgeAfter      time.Duration

	mu      sync.RWMutex
	workers []string
}

// New builds a Coordinator over the configured topology.
func New(cfg Config) *Coordinator {
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
		}}
	}
	timeout := cfg.FragmentTimeout
	if timeout <= 0 {
		timeout = DefaultFragmentTimeout
	}
	c := &Coordinator{
		client:          client,
		fragmentTimeout: timeout,
		hedgeAfter:      cfg.HedgeAfter,
	}
	for _, w := range cfg.Workers {
		c.AddWorker(w)
	}
	return c
}

// AddWorker joins a worker to the topology (idempotent). Reports whether
// the worker was newly added. Invalid URLs are rejected.
func (c *Coordinator) AddWorker(base string) bool {
	base = strings.TrimRight(strings.TrimSpace(base), "/")
	u, err := url.Parse(base)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w == base {
			return false
		}
	}
	c.workers = append(c.workers, base)
	return true
}

// Workers returns a snapshot of the topology in join order.
func (c *Coordinator) Workers() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.workers))
	copy(out, c.workers)
	return out
}

// fragmentRequest is the POST /v1/fragment body. The worker re-plans the
// query text locally and executes only [Start, End) of its driving scan.
type fragmentRequest struct {
	Lang        string `json:"lang"`
	Query       string `json:"query"`
	Start       int64  `json:"start"`
	End         int64  `json:"end"`
	Fingerprint string `json:"fingerprint"`
}

// fragStat is one fragment's attempt accounting.
type fragStat struct {
	retries int64
	hedges  int64
	worker  string // worker that served the winning attempt
}

// Execute runs (lang, query) distributed when the plan is eligible.
// handled=false means the caller must execute locally: the plan has no
// partitionable driving scan, the topology is empty, or a worker's plan
// diverged (ErrPlanMismatch → counted as a fallback). handled=true with
// err=nil returns the complete merged result (never partial rows);
// handled=true with err≠nil means the distributed attempt failed after
// per-fragment retries and the query should fail — the fragments may
// have observed side-effect-free partial work only.
//
// ORDER BY / LIMIT are NOT applied here: fragments and the merge run with
// Env.Sort ignored, and the caller applies its sort wrapper exactly as it
// would over a local unsorted program.
func (c *Coordinator) Execute(ctx context.Context, env *exec.Env, lang, query string, plan algebra.Node, tag string) (*exec.Result, []obs.Span, bool, error) {
	workers := c.Workers()
	if len(workers) == 0 {
		return nil, nil, false, nil
	}
	drive := exec.DrivingScan(plan)
	if drive == nil {
		return nil, nil, false, nil
	}
	ds, in, err := env.Catalog.Dataset(drive.Dataset)
	if err != nil {
		return nil, nil, false, nil // let local execution surface the error
	}
	part, ok := in.(plugin.Partitioner)
	if !ok {
		return nil, nil, false, nil
	}
	morsels, err := part.PartitionScan(ds, len(workers))
	if err != nil || len(morsels) < 2 {
		return nil, nil, false, nil
	}
	ms, err := exec.CompileMergeState(plan, env)
	if err != nil {
		return nil, nil, false, nil
	}

	req := fragmentRequest{Lang: lang, Query: query, Fingerprint: ms.Fingerprint()}
	partials := make([]*exec.Partial, len(morsels))
	spans := make([]obs.Span, len(morsels))
	stats := make([]fragStat, len(morsels))

	sctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for i := range morsels {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fr := req
			fr.Start, fr.End = morsels[i].Start, morsels[i].End
			started := time.Now()
			p, stat, err := c.runFragment(sctx, workers, i, fr, tag)
			stats[i] = stat
			spans[i] = obs.Span{
				Name:  fmt.Sprintf("fragment %d [%d,%d) → %s", i, fr.Start, fr.End, hostOf(stat.worker)),
				Start: started,
				Dur:   time.Since(started),
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				cancelAll() // stop sibling fragments; workers cancel via disconnect
				return
			}
			partials[i] = p
		}(i)
	}
	wg.Wait()

	m := env.Metrics
	var retries, hedges int64
	for _, s := range stats {
		retries += s.retries
		hedges += s.hedges
	}
	if m != nil {
		m.ClusterRetries.Add(retries)
		m.ClusterHedges.Add(hedges)
	}
	if firstErr != nil {
		// The scatter cancel may have surfaced on sibling fragments as a
		// context error; prefer the caller's own cancellation when present.
		// Abandonment by the caller is not a cluster failure — the engine
		// classifies it into queries_cancelled, not cluster_errors.
		if ctx.Err() != nil {
			return nil, spans, true, context.Cause(ctx)
		}
		if errors.Is(firstErr, ErrPlanMismatch) {
			if m != nil {
				m.ClusterFallbacks.Add(1)
			}
			return nil, nil, false, nil
		}
		if m != nil {
			m.ClusterErrors.Add(1)
		}
		return nil, spans, true, firstErr
	}

	// Gather: merge strictly in morsel order — the property that makes the
	// distributed result identical to serial execution.
	for i, p := range partials {
		if err := ms.Merge(p); err != nil {
			if m != nil {
				m.ClusterErrors.Add(1)
			}
			return nil, spans, true, fmt.Errorf("cluster: merging fragment %d from %s: %w", i, stats[i].worker, err)
		}
	}
	res, err := ms.Result()
	if err != nil {
		if m != nil {
			m.ClusterErrors.Add(1)
		}
		return nil, spans, true, err
	}
	res.Fragments = len(partials)
	if m != nil {
		m.ClusterQueries.Add(1)
		m.ClusterFragments.Add(int64(len(partials)))
	}
	return res, spans, true, nil
}

// attemptResult is one fragment attempt's outcome.
type attemptResult struct {
	p      *exec.Partial
	err    error
	worker string
}

// runFragment drives one fragment to success or a clean error: primary
// attempt on workers[idx], at most one more attempt on the next worker —
// launched on failure (retry) or speculatively after the hedge threshold.
func (c *Coordinator) runFragment(ctx context.Context, workers []string, idx int, req fragmentRequest, tag string) (*exec.Partial, fragStat, error) {
	var stat fragStat
	primary := workers[idx%len(workers)]
	backup := workers[(idx+1)%len(workers)]

	fctx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the losing attempt's connection
	resCh := make(chan attemptResult, 2)
	launch := func(w string) {
		go func() {
			p, err := c.fetchFragment(fctx, w, req, tag)
			resCh <- attemptResult{p: p, err: err, worker: w}
		}()
	}
	launch(primary)
	launched, failed := 1, 0

	var hedgeCh <-chan time.Time
	if c.hedgeAfter > 0 && backup != primary {
		t := time.NewTimer(c.hedgeAfter)
		defer t.Stop()
		hedgeCh = t.C
	}
	for {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if launched < 2 {
				launch(backup)
				launched++
				stat.hedges++
			}
		case r := <-resCh:
			if r.err == nil {
				stat.worker = r.worker
				return r.p, stat, nil
			}
			failed++
			if errors.Is(r.err, ErrPlanMismatch) {
				return nil, stat, r.err // no retry: the coordinator falls back
			}
			if ctx.Err() != nil {
				return nil, stat, context.Cause(ctx)
			}
			if launched < 2 && backup != primary {
				launch(backup)
				launched++
				stat.retries++
				continue
			}
			if failed == launched {
				return nil, stat, fmt.Errorf("cluster: fragment %d [%d,%d) failed on %s after %d attempt(s): %w",
					idx, req.Start, req.End, hostOf(r.worker), launched, r.err)
			}
			// One attempt still in flight (a hedge raced a failure); wait
			// for it.
		case <-ctx.Done():
			return nil, stat, context.Cause(ctx)
		}
	}
}

// fetchFragment performs one HTTP fragment attempt and decodes the frame.
func (c *Coordinator) fetchFragment(ctx context.Context, worker string, req fragmentRequest, tag string) (*exec.Partial, error) {
	actx, cancel := context.WithTimeout(ctx, c.fragmentTimeout)
	defer cancel()
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, worker+"/v1/fragment", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if tag != "" {
		hreq.Header.Set("X-Request-Id", tag)
	}
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		return nil, fmt.Errorf("%w (worker %s)", ErrPlanMismatch, hostOf(worker))
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
		return nil, fmt.Errorf("cluster: worker %s: %s: %s", hostOf(worker), resp.Status, strings.TrimSpace(string(msg)))
	}
	p, err := exec.DecodePartialStream(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", hostOf(worker), err)
	}
	return p, nil
}

// hostOf shortens a worker base URL to its host for error and span text.
func hostOf(worker string) string {
	if worker == "" {
		return "?"
	}
	if u, err := url.Parse(worker); err == nil && u.Host != "" {
		return u.Host
	}
	return worker
}
