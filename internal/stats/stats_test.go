package stats

import (
	"sync"
	"testing"
)

func TestObserveRange(t *testing.T) {
	var c Column
	c.Observe(5)
	c.Observe(-3)
	c.Observe(10)
	if !c.HasRange || c.Min != -3 || c.Max != 10 {
		t.Errorf("column = %+v", c)
	}
}

func TestSelectivityFormulas(t *testing.T) {
	tbl := NewTable()
	col := tbl.Col("x")
	col.Observe(0)
	col.Observe(100)

	if got := tbl.SelLt("x", 25); got != 0.25 {
		t.Errorf("SelLt(25) = %g", got)
	}
	if got := tbl.SelLt("x", 200); got != 1 {
		t.Errorf("SelLt clamp high = %g", got)
	}
	if got := tbl.SelLt("x", -10); got != 0 {
		t.Errorf("SelLt clamp low = %g", got)
	}
	if got := tbl.SelGt("x", 75); got != 0.25 {
		t.Errorf("SelGt(75) = %g", got)
	}
	// Unknown columns fall back to the paper's hard-coded default.
	if got := tbl.SelLt("unknown", 5); got != DefaultSelectivity {
		t.Errorf("unknown column = %g", got)
	}
	if got := tbl.SelEq("x"); got != DefaultSelectivity {
		t.Errorf("SelEq without distinct = %g", got)
	}
	col.DistinctEst = 50
	if got := tbl.SelEq("x"); got != 0.02 {
		t.Errorf("SelEq with distinct = %g", got)
	}
}

func TestDegenerateRange(t *testing.T) {
	tbl := NewTable()
	col := tbl.Col("x")
	col.Observe(7) // min == max
	if got := tbl.SelLt("x", 7); got != DefaultSelectivity {
		t.Errorf("degenerate range should fall back: %g", got)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tbl := s.Table("shared")
			tbl.Col("c") // may race internally only if Store is broken
		}()
	}
	wg.Wait()
	if _, ok := s.Lookup("shared"); !ok {
		t.Error("table missing after concurrent creation")
	}
	if _, ok := s.Lookup("ghost"); ok {
		t.Error("ghost table should not exist")
	}
}

func TestCostFormulas(t *testing.T) {
	if ScanCost(1000, 2, CostJSONField) <= ScanCost(1000, 2, CostBinaryField) {
		t.Error("JSON scans must cost more than binary")
	}
	if ScanCost(100, 0, 1) != 100 {
		t.Error("zero fields should cost as one")
	}
	if JoinCost(100, 1000) <= 0 {
		t.Error("join cost must be positive")
	}
}
