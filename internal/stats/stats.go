// Package stats is the metadata store of the engine (§5.2 "Enabling
// Cost-based Optimizations"): per-dataset cardinalities and per-attribute
// min/max values, collected by input plug-ins during cold scans and result
// materialization, plus the textbook selectivity and cost formulas the
// optimizer instantiates with them. When no statistics exist, the store
// falls back to the paper's hard-coded defaults (e.g. 10% selectivity).
package stats

import (
	"sync"
)

// DefaultSelectivity is the paper's baseline predicate selectivity assumed
// in the absence of statistics.
const DefaultSelectivity = 0.1

// Column holds statistics for one (possibly nested, dotted) attribute.
type Column struct {
	Min, Max  float64
	HasRange  bool
	NullCount int64
	// DistinctEst is a coarse distinct-count estimate maintained by sampling.
	DistinctEst int64
}

// Table holds statistics for one dataset. Reads and writes may race
// between cold scans, blocking-operator profiling, and the idle statistics
// daemon, so all access goes through the table's lock.
type Table struct {
	mu   sync.Mutex
	Rows int64
	Cols map[string]*Column
}

// NewTable returns an empty statistics table.
func NewTable() *Table { return &Table{Cols: map[string]*Column{}} }

// Col returns the named column's stats, creating it if needed. Callers that
// mutate the returned column concurrently should prefer Observe.
func (t *Table) Col(name string) *Column {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.Cols[name]
	if !ok {
		c = &Column{}
		t.Cols[name] = c
	}
	return c
}

// Observe folds one numeric observation into the named column's range,
// under the table lock.
func (t *Table) Observe(name string, v float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.Cols[name]
	if !ok {
		c = &Column{}
		t.Cols[name] = c
	}
	c.Observe(v)
}

// Range returns the column's observed min/max under the table lock.
func (t *Table) Range(name string) (min, max float64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, exists := t.Cols[name]
	if !exists || !c.HasRange {
		return 0, 0, false
	}
	return c.Min, c.Max, true
}

// Observe folds one numeric observation into the column's range. It is not
// synchronized; single-writer phases (the cold scan building a dataset's
// index) use it directly, everything else goes through Table.Observe.
func (c *Column) Observe(v float64) {
	if !c.HasRange {
		c.Min, c.Max, c.HasRange = v, v, true
		return
	}
	if v < c.Min {
		c.Min = v
	}
	if v > c.Max {
		c.Max = v
	}
}

// SelLt estimates the selectivity of col < x assuming a uniform
// distribution over [Min, Max] — the textbook formula the paper's skeleton
// plug-ins use by default.
func (t *Table) SelLt(col string, x float64) float64 {
	min, max, ok := t.Range(col)
	if !ok || max == min {
		return DefaultSelectivity
	}
	return clamp01((x - min) / (max - min))
}

// SelGt estimates the selectivity of col > x.
func (t *Table) SelGt(col string, x float64) float64 {
	min, max, ok := t.Range(col)
	if !ok || max == min {
		return DefaultSelectivity
	}
	return clamp01((max - x) / (max - min))
}

// SelEq estimates the selectivity of col = x from the distinct estimate.
func (t *Table) SelEq(col string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.Cols[col]
	if !ok || c.DistinctEst <= 0 {
		return DefaultSelectivity
	}
	return clamp01(1 / float64(c.DistinctEst))
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Store is the process-wide metadata store, keyed by dataset name. It is
// safe for concurrent use: cold scans record statistics while the daemon or
// later queries read them.
type Store struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{tables: map[string]*Table{}} }

// Table returns the stats table for a dataset, creating it if needed.
func (s *Store) Table(dataset string) *Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[dataset]
	if !ok {
		t = NewTable()
		s.tables[dataset] = t
	}
	return t
}

// Lookup returns the stats table if one exists.
func (s *Store) Lookup(dataset string) (*Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[dataset]
	return t, ok
}

// Cost formula weights. These model the relative per-tuple access cost of
// each data format: raw JSON navigation is far more expensive than CSV
// parsing, which is more expensive than binary reads (§6: the cache
// eviction bias JSON ≻ CSV ≻ Binary follows the same ordering).
const (
	CostBinaryField = 1.0
	CostCacheField  = 1.0
	CostCSVField    = 6.0
	CostJSONField   = 14.0
)

// ScanCost is the textbook linear cost formula: rows × fields × per-field
// format weight. Input plug-ins instantiate it with their format weight.
func ScanCost(rows int64, fields int, perField float64) float64 {
	if fields == 0 {
		fields = 1
	}
	return float64(rows) * float64(fields) * perField
}

// JoinCost estimates a radix hash join: build + probe linear passes.
func JoinCost(buildRows, probeRows int64) float64 {
	return 2.5*float64(buildRows) + 1.5*float64(probeRows)
}
