package volcano

import (
	"fmt"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// boxedAcc folds boxed values — every update goes through type dispatch on
// the Value kind, the per-tuple interpretation cost of a generic engine.
type boxedAcc struct {
	kind  expr.AggKind
	arg   expr.Expr
	state types.Value
	sum   float64
	n     int64
	elems []types.Value
	seen  bool
}

func (a *boxedAcc) fold(env expr.ValueEnv) error {
	if a.kind == expr.AggCount {
		a.n++
		return nil
	}
	v, err := expr.Eval(a.arg, env)
	if err != nil {
		return err
	}
	switch a.kind {
	case expr.AggBag, expr.AggList:
		a.elems = append(a.elems, v)
	case expr.AggAvg:
		if !v.IsNull() {
			a.sum += v.AsFloat()
			a.n++
		}
	case expr.AggSum:
		if v.IsNull() {
			return nil
		}
		if !a.seen {
			a.state = v
			a.seen = true
			return nil
		}
		if a.state.Kind == types.KindInt && v.Kind == types.KindInt {
			a.state = types.IntValue(a.state.I + v.I)
		} else {
			a.state = types.FloatValue(a.state.AsFloat() + v.AsFloat())
		}
	case expr.AggMax:
		if v.IsNull() {
			return nil
		}
		if !a.seen || types.Compare(v, a.state) > 0 {
			a.state = v
			a.seen = true
		}
	case expr.AggMin:
		if v.IsNull() {
			return nil
		}
		if !a.seen || types.Compare(v, a.state) < 0 {
			a.state = v
			a.seen = true
		}
	default:
		return fmt.Errorf("volcano: unsupported aggregate %v", a.kind)
	}
	return nil
}

func (a *boxedAcc) result() types.Value {
	switch a.kind {
	case expr.AggCount:
		return types.IntValue(a.n)
	case expr.AggAvg:
		if a.n == 0 {
			return types.NullValue()
		}
		return types.FloatValue(a.sum / float64(a.n))
	case expr.AggBag:
		return types.BagValue(a.elems...)
	case expr.AggList:
		return types.ListValue(a.elems...)
	default:
		if !a.seen {
			return types.NullValue()
		}
		return a.state
	}
}

func (e *Engine) runReduce(red *algebra.Reduce) (*Result, error) {
	it, err := e.build(red.Child)
	if err != nil {
		return nil, err
	}
	// Collection yield.
	if len(red.Aggs) == 1 && (red.Aggs[0].Kind == expr.AggBag || red.Aggs[0].Kind == expr.AggList) {
		var rows []types.Value
		err := drain(it, func(env expr.ValueEnv) error {
			if red.Pred != nil {
				v, err := expr.Eval(red.Pred, env)
				if err != nil {
					return err
				}
				if !v.Bool() {
					return nil
				}
			}
			v, err := expr.Eval(red.Aggs[0].Arg, env)
			if err != nil {
				return err
			}
			rows = append(rows, v)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return &Result{Cols: red.Names, Rows: rows}, nil
	}
	accs := make([]*boxedAcc, len(red.Aggs))
	for i, a := range red.Aggs {
		accs[i] = &boxedAcc{kind: a.Kind, arg: a.Arg}
	}
	err = drain(it, func(env expr.ValueEnv) error {
		if red.Pred != nil {
			v, err := expr.Eval(red.Pred, env)
			if err != nil {
				return err
			}
			if !v.Bool() {
				return nil
			}
		}
		for _, acc := range accs {
			if err := acc.fold(env); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	vals := make([]types.Value, len(accs))
	for i, acc := range accs {
		vals[i] = acc.result()
	}
	return &Result{Cols: red.Names, Rows: []types.Value{types.RecordValue(red.Names, vals)}}, nil
}

func (e *Engine) runNest(n *algebra.Nest) (*Result, error) {
	it, err := e.build(n.Child)
	if err != nil {
		return nil, err
	}
	type grp struct {
		keyVals []types.Value
		accs    []*boxedAcc
	}
	groups := map[string]*grp{}
	var order []string
	err = drain(it, func(env expr.ValueEnv) error {
		if n.Pred != nil {
			v, err := expr.Eval(n.Pred, env)
			if err != nil {
				return err
			}
			if !v.Bool() {
				return nil
			}
		}
		key := ""
		keyVals := make([]types.Value, len(n.GroupBy))
		for i, g := range n.GroupBy {
			v, err := expr.Eval(g, env)
			if err != nil {
				return err
			}
			keyVals[i] = v
			key += v.String() + "\x00"
		}
		g, ok := groups[key]
		if !ok {
			accs := make([]*boxedAcc, len(n.Aggs))
			for i, a := range n.Aggs {
				accs[i] = &boxedAcc{kind: a.Kind, arg: a.Arg}
			}
			g = &grp{keyVals: keyVals, accs: accs}
			groups[key] = g
			order = append(order, key)
		}
		for _, acc := range g.accs {
			if err := acc.fold(env); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(order)
	names := append(append([]string{}, n.GroupNames...), n.AggNames...)
	rows := make([]types.Value, 0, len(order))
	for _, key := range order {
		g := groups[key]
		vals := make([]types.Value, 0, len(names))
		vals = append(vals, g.keyVals...)
		for _, acc := range g.accs {
			vals = append(vals, acc.result())
		}
		rows = append(rows, types.RecordValue(names, vals))
	}
	return &Result{Cols: names, Rows: rows}, nil
}
