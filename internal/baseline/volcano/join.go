package volcano

import (
	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// joinIter is a boxed hash join: the build side materializes envs keyed by
// a canonical string of the key values (the generic, type-oblivious path a
// general-purpose engine takes), and each probe allocates a merged env per
// match. Non-equi joins degrade to nested loops.
type joinIter struct {
	j     *algebra.Join
	left  iterator
	right iterator

	keysL, keysR []expr.Expr
	residual     expr.Expr

	table map[string][]expr.ValueEnv
	built bool

	// nested-loop fallback
	rightRows []expr.ValueEnv

	curMatches []expr.ValueEnv
	curEnv     expr.ValueEnv
	curIdx     int
}

func newJoinIter(j *algebra.Join, left, right iterator) *joinIter {
	keysL, keysR, residual := j.EquiKeys()
	return &joinIter{
		j: j, left: left, right: right,
		keysL: keysL, keysR: keysR, residual: expr.Conjoin(residual),
	}
}

func (jn *joinIter) open() error {
	jn.built = false
	jn.curMatches = nil
	if err := jn.left.open(); err != nil {
		return err
	}
	return jn.right.open()
}

func (jn *joinIter) close() {
	jn.left.close()
	jn.right.close()
}

// keyString builds the canonical boxed key (generic engines hash through a
// type-erased representation).
func keyString(keys []expr.Expr, env expr.ValueEnv) (string, bool, error) {
	out := ""
	for _, k := range keys {
		v, err := expr.Eval(k, env)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		out += v.String() + "\x00"
	}
	return out, true, nil
}

func (jn *joinIter) buildSide() error {
	if len(jn.keysR) == 0 {
		for {
			env, ok, err := jn.right.next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			jn.rightRows = append(jn.rightRows, env)
		}
		jn.built = true
		return nil
	}
	jn.table = map[string][]expr.ValueEnv{}
	for {
		env, ok, err := jn.right.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		key, valid, err := keyString(jn.keysR, env)
		if err != nil {
			return err
		}
		if !valid {
			continue
		}
		jn.table[key] = append(jn.table[key], env)
	}
	jn.built = true
	return nil
}

func (jn *joinIter) next() (expr.ValueEnv, bool, error) {
	if !jn.built {
		if err := jn.buildSide(); err != nil {
			return nil, false, err
		}
	}
	for {
		for jn.curIdx < len(jn.curMatches) {
			renv := jn.curMatches[jn.curIdx]
			jn.curIdx++
			merged := expr.ValueEnv{}
			for k, v := range jn.curEnv {
				merged[k] = v
			}
			for k, v := range renv {
				merged[k] = v
			}
			if jn.residual != nil {
				v, err := expr.Eval(jn.residual, merged)
				if err != nil {
					return nil, false, err
				}
				if !v.Bool() {
					continue
				}
			}
			return merged, true, nil
		}
		lenv, ok, err := jn.left.next()
		if err != nil || !ok {
			return nil, false, err
		}
		var matches []expr.ValueEnv
		if len(jn.keysL) == 0 {
			matches = jn.rightRows
		} else {
			key, valid, err := keyString(jn.keysL, lenv)
			if err != nil {
				return nil, false, err
			}
			if valid {
				matches = jn.table[key]
			}
		}
		if len(matches) == 0 && jn.j.Outer {
			merged := expr.ValueEnv{}
			for k, v := range lenv {
				merged[k] = v
			}
			for name := range jn.j.Right.Bindings() {
				merged[name] = types.NullValue()
			}
			return merged, true, nil
		}
		jn.curEnv = lenv
		jn.curMatches = matches
		jn.curIdx = 0
	}
}
