package volcano

import (
	"testing"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

func tSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "kids", Type: types.NewListType(types.NewRecordType(
			types.Field{Name: "w", Type: types.Int},
		))},
	)
}

func mkRow(a int64, ws ...int64) types.Value {
	kids := make([]types.Value, len(ws))
	for i, w := range ws {
		kids[i] = types.RecordValue([]string{"w"}, []types.Value{types.IntValue(w)})
	}
	return types.RecordValue([]string{"a", "kids"},
		[]types.Value{types.IntValue(a), types.ListValue(kids...)})
}

func fieldOf(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }

func loadEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	e.Load("t", []types.Value{mkRow(1, 5, 6), mkRow(2), mkRow(3, 7), mkRow(4, 8, 9, 10)})
	if e.Rows("t") != 4 {
		t.Fatalf("rows = %d", e.Rows("t"))
	}
	return e
}

func TestSelectCount(t *testing.T) {
	e := loadEngine(t)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Select{
			Pred:  &expr.BinOp{Op: expr.OpGt, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(1)}},
			Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 3 {
		t.Fatalf("count = %d", got)
	}
}

func TestUnnestIterator(t *testing.T) {
	e := loadEngine(t)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("k", "w")}},
		Names: []string{"s"},
		Child: &algebra.Unnest{
			Path:    fieldOf("x", "kids"),
			Binding: "k",
			Pred:    &expr.BinOp{Op: expr.OpGt, L: fieldOf("k", "w"), R: &expr.Const{V: types.IntValue(5)}},
			Child:   &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 40 { // 6+7+8+9+10
		t.Fatalf("sum = %d, want 40", got)
	}
}

func TestOuterUnnest(t *testing.T) {
	e := loadEngine(t)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Unnest{
			Path:    fieldOf("x", "kids"),
			Binding: "k",
			Outer:   true,
			Child:   &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 7 { // 6 elements + 1 empty parent
		t.Fatalf("count = %d, want 7", got)
	}
}

func TestHashJoinAndOuter(t *testing.T) {
	e := loadEngine(t)
	e.Load("u", []types.Value{
		types.RecordValue([]string{"a", "v"}, []types.Value{types.IntValue(2), types.IntValue(20)}),
		types.RecordValue([]string{"a", "v"}, []types.Value{types.IntValue(4), types.IntValue(40)}),
	})
	uSchema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
	join := &algebra.Join{
		Pred:  &expr.BinOp{Op: expr.OpEq, L: fieldOf("x", "a"), R: fieldOf("y", "a")},
		Left:  &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		Right: &algebra.Scan{Dataset: "u", Binding: "y", Type: uSchema},
	}
	res, err := e.RunPlan(&algebra.Reduce{
		Aggs: []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("y", "v")}}, Names: []string{"s"}, Child: join,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 60 {
		t.Fatalf("inner join sum = %d", got)
	}
	outer := &algebra.Join{Pred: join.Pred, Left: join.Left, Right: join.Right, Outer: true}
	res, err = e.RunPlan(&algebra.Reduce{
		Aggs: []expr.Agg{{Kind: expr.AggCount}}, Names: []string{"n"}, Child: outer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 4 {
		t.Fatalf("outer join count = %d, want 4", got)
	}
}

func TestNonEquiJoinNestedLoop(t *testing.T) {
	e := loadEngine(t)
	e.Load("u", []types.Value{
		types.RecordValue([]string{"b"}, []types.Value{types.IntValue(2)}),
	})
	uSchema := types.NewRecordType(types.Field{Name: "b", Type: types.Int})
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Join{
			Pred:  &expr.BinOp{Op: expr.OpGt, L: fieldOf("x", "a"), R: fieldOf("y", "b")},
			Left:  &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
			Right: &algebra.Scan{Dataset: "u", Binding: "y", Type: uSchema},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 2 { // a ∈ {3,4}
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestRawJSONCharEncoding(t *testing.T) {
	e := New()
	e.LoadRawJSON("docs", []byte(`{"a": 1, "s": "x"}
{"a": 2, "s": "y"}

{"a": 3, "nested": {"b": 4}}
`))
	schema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "s", Type: types.String},
		types.Field{Name: "nested", Type: types.NewRecordType(types.Field{Name: "b", Type: types.Int})},
	)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("d", "a")}},
		Names: []string{"s"},
		Child: &algebra.Scan{Dataset: "docs", Binding: "d", Type: schema},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 6 {
		t.Fatalf("sum = %d, want 6", got)
	}
}

func TestGroupByBoxed(t *testing.T) {
	e := loadEngine(t)
	plan := &algebra.Nest{
		GroupBy: []expr.Expr{&expr.BinOp{
			Op: expr.OpMod, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(2)},
		}},
		GroupNames: []string{"parity"},
		Aggs:       []expr.Agg{{Kind: expr.AggCount}},
		AggNames:   []string{"n"},
		Child:      &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
}

func TestMissingTable(t *testing.T) {
	e := New()
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Scan{Dataset: "nope", Binding: "x", Type: tSchema()},
	}
	if _, err := e.RunPlan(plan); err == nil {
		t.Error("missing table should fail")
	}
}
