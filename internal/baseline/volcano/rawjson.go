package volcano

import (
	"bytes"
	"encoding/json"
	"fmt"

	"proteus/internal/expr"
	"proteus/internal/types"
)

// LoadRawJSON ingests JSON documents as raw character data — the DBMS-X
// model, where JSON is a VARCHAR-like type that must be re-parsed on every
// access. Scans over such a table decode each document per query, which is
// why the paper's DBMS X is the slowest system on JSON workloads.
func (e *Engine) LoadRawJSON(name string, data []byte) {
	var docs [][]byte
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			docs = append(docs, trimmed)
		}
	}
	e.rawTables[name] = docs
}

// jsonToValue converts encoding/json's generic decoding into the engine's
// boxed values (numbers become int when integral).
func jsonToValue(v any) types.Value {
	switch x := v.(type) {
	case nil:
		return types.NullValue()
	case bool:
		return types.BoolValue(x)
	case float64:
		if x == float64(int64(x)) {
			return types.IntValue(int64(x))
		}
		return types.FloatValue(x)
	case string:
		return types.StringValue(x)
	case []any:
		elems := make([]types.Value, len(x))
		for i, el := range x {
			elems[i] = jsonToValue(el)
		}
		return types.ListValue(elems...)
	case map[string]any:
		// Preserve a stable field order: json.Decoder does not keep document
		// order, so sort names (field order is immaterial to queries).
		names := make([]string, 0, len(x))
		for k := range x {
			names = append(names, k)
		}
		sortStrings(names)
		vals := make([]types.Value, len(names))
		for i, n := range names {
			vals[i] = jsonToValue(x[n])
		}
		return types.RecordValue(names, vals)
	}
	return types.NullValue()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// rawScanIter parses one character-encoded document per next() call.
type rawScanIter struct {
	docs    [][]byte
	binding string
	pos     int
}

func (s *rawScanIter) open() error { s.pos = 0; return nil }
func (s *rawScanIter) close()      {}

func (s *rawScanIter) next() (expr.ValueEnv, bool, error) {
	if s.pos >= len(s.docs) {
		return nil, false, nil
	}
	var generic any
	if err := json.Unmarshal(s.docs[s.pos], &generic); err != nil {
		return nil, false, fmt.Errorf("volcano: raw JSON row %d: %w", s.pos, err)
	}
	s.pos++
	return expr.ValueEnv{s.binding: jsonToValue(generic)}, true, nil
}
