// Package volcano is the general-purpose row-store baseline (the paper's
// PostgreSQL / DBMS-X stand-in, §7). It executes the same nested relational
// algebra plans as Proteus, but in the classic Volcano iterator style the
// paper identifies as the source of interpretation overhead: one virtual
// Next() call per operator per tuple, boxed values everywhere, and
// tree-walking expression evaluation with per-tuple type dispatch.
//
// Datasets must be loaded before querying — the load step fully converts
// the input into boxed rows (the RDBMS ingest the paper charges to the
// baseline systems' load phase), so queries run over a jsonb-like binary
// representation rather than raw text.
package volcano

import (
	"fmt"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// Engine holds loaded tables: boxed rows, plus raw character-encoded JSON
// collections (the DBMS-X model; see LoadRawJSON).
type Engine struct {
	tables    map[string][]types.Value
	rawTables map[string][][]byte
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{tables: map[string][]types.Value{}, rawTables: map[string][][]byte{}}
}

// Load ingests boxed rows under a table name (the load phase).
func (e *Engine) Load(name string, rows []types.Value) { e.tables[name] = rows }

// Rows returns a loaded table's row count.
func (e *Engine) Rows(name string) int { return len(e.tables[name]) }

// iterator is the Volcano interface: every operator implements it, and
// every tuple crosses each operator boundary through a virtual call.
type iterator interface {
	open() error
	next() (expr.ValueEnv, bool, error)
	close()
}

// Result mirrors exec.Result for comparison harnesses.
type Result struct {
	Cols []string
	Rows []types.Value
}

// Scalar returns the single value of a 1×1 result.
func (r *Result) Scalar() types.Value {
	if len(r.Rows) == 1 && r.Rows[0].Kind == types.KindRecord && len(r.Rows[0].Rec.Values) == 1 {
		return r.Rows[0].Rec.Values[0]
	}
	return types.Value{}
}

// RunPlan interprets an algebra plan.
func (e *Engine) RunPlan(plan algebra.Node) (*Result, error) {
	switch root := plan.(type) {
	case *algebra.Reduce:
		return e.runReduce(root)
	case *algebra.Nest:
		return e.runNest(root)
	default:
		it, err := e.build(plan)
		if err != nil {
			return nil, err
		}
		names := sortedBindings(plan)
		var rows []types.Value
		if err := drain(it, func(env expr.ValueEnv) error {
			vals := make([]types.Value, len(names))
			for i, n := range names {
				vals[i] = env[n]
			}
			rows = append(rows, types.RecordValue(names, vals))
			return nil
		}); err != nil {
			return nil, err
		}
		return &Result{Cols: names, Rows: rows}, nil
	}
}

func sortedBindings(plan algebra.Node) []string {
	names := make([]string, 0)
	for n := range plan.Bindings() {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func drain(it iterator, fn func(expr.ValueEnv) error) error {
	if err := it.open(); err != nil {
		return err
	}
	defer it.close()
	for {
		env, ok, err := it.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(env); err != nil {
			return err
		}
	}
}

// build constructs the iterator tree for a plan subtree.
func (e *Engine) build(n algebra.Node) (iterator, error) {
	switch x := n.(type) {
	case *algebra.Scan:
		if docs, ok := e.rawTables[x.Dataset]; ok {
			return &rawScanIter{docs: docs, binding: x.Binding}, nil
		}
		rows, ok := e.tables[x.Dataset]
		if !ok {
			return nil, fmt.Errorf("volcano: table %q not loaded", x.Dataset)
		}
		return &scanIter{rows: rows, binding: x.Binding}, nil
	case *algebra.Select:
		child, err := e.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &selectIter{child: child, pred: x.Pred}, nil
	case *algebra.Join:
		left, err := e.build(x.Left)
		if err != nil {
			return nil, err
		}
		right, err := e.build(x.Right)
		if err != nil {
			return nil, err
		}
		return newJoinIter(x, left, right), nil
	case *algebra.Unnest:
		child, err := e.build(x.Child)
		if err != nil {
			return nil, err
		}
		return &unnestIter{child: child, u: x}, nil
	default:
		return nil, fmt.Errorf("volcano: unsupported operator %T in pipeline", n)
	}
}

// scanIter yields one boxed env per row: the per-tuple allocation the
// general-purpose engine pays.
type scanIter struct {
	rows    []types.Value
	binding string
	pos     int
}

func (s *scanIter) open() error { s.pos = 0; return nil }
func (s *scanIter) close()      {}
func (s *scanIter) next() (expr.ValueEnv, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	env := expr.ValueEnv{s.binding: s.rows[s.pos]}
	s.pos++
	return env, true, nil
}

// selectIter interprets its predicate per tuple (tree walk + boxing).
type selectIter struct {
	child iterator
	pred  expr.Expr
}

func (s *selectIter) open() error { return s.child.open() }
func (s *selectIter) close()      { s.child.close() }
func (s *selectIter) next() (expr.ValueEnv, bool, error) {
	for {
		env, ok, err := s.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		v, err := expr.Eval(s.pred, env)
		if err != nil {
			return nil, false, err
		}
		if v.Bool() {
			return env, true, nil
		}
	}
}

// unnestIter unrolls a collection field, one element env per call.
type unnestIter struct {
	child iterator
	u     *algebra.Unnest

	curEnv   expr.ValueEnv
	curElems []types.Value
	curIdx   int
	pending  bool
}

func (u *unnestIter) open() error {
	u.pending = false
	return u.child.open()
}
func (u *unnestIter) close() { u.child.close() }

func (u *unnestIter) next() (expr.ValueEnv, bool, error) {
	for {
		if u.pending && u.curIdx < len(u.curElems) {
			elem := u.curElems[u.curIdx]
			u.curIdx++
			env := expr.ValueEnv{}
			for k, v := range u.curEnv {
				env[k] = v
			}
			env[u.u.Binding] = elem
			if u.u.Pred != nil {
				v, err := expr.Eval(u.u.Pred, env)
				if err != nil {
					return nil, false, err
				}
				if !v.Bool() {
					continue
				}
			}
			return env, true, nil
		}
		env, ok, err := u.child.next()
		if err != nil || !ok {
			return nil, false, err
		}
		coll, err := expr.Eval(u.u.Path, env)
		if err != nil {
			return nil, false, err
		}
		if len(coll.Elems) == 0 {
			if u.u.Outer {
				out := expr.ValueEnv{}
				for k, v := range env {
					out[k] = v
				}
				out[u.u.Binding] = types.NullValue()
				return out, true, nil
			}
			continue
		}
		u.curEnv = env
		u.curElems = coll.Elems
		u.curIdx = 0
		u.pending = true
	}
}
