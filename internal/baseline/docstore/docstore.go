package docstore

import (
	"fmt"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// Engine holds binary-encoded collections.
type Engine struct {
	colls map[string][][]byte
}

// New returns an empty engine.
func New() *Engine { return &Engine{colls: map[string][][]byte{}} }

// Load encodes boxed rows into the binary document form (the BSON
// conversion the paper charges to MongoDB's load phase).
func (e *Engine) Load(name string, rows []types.Value) error {
	docs := make([][]byte, 0, len(rows))
	for _, r := range rows {
		d, err := Encode(r)
		if err != nil {
			return err
		}
		docs = append(docs, d)
	}
	e.colls[name] = docs
	return nil
}

// Docs returns a collection's document count.
func (e *Engine) Docs(name string) int { return len(e.colls[name]) }

// Result mirrors exec.Result.
type Result struct {
	Cols []string
	Rows []types.Value
}

// Scalar returns the single value of a 1×1 result.
func (r *Result) Scalar() types.Value {
	if len(r.Rows) == 1 && r.Rows[0].Kind == types.KindRecord && len(r.Rows[0].Rec.Values) == 1 {
		return r.Rows[0].Rec.Values[0]
	}
	return types.Value{}
}

// RunPlan interprets an algebra plan as an aggregation pipeline: match,
// project, unwind, group — with joins emulated via a two-pass map-reduce
// over both collections.
func (e *Engine) RunPlan(plan algebra.Node) (*Result, error) {
	switch root := plan.(type) {
	case *algebra.Reduce:
		envs, err := e.produce(root.Child)
		if err != nil {
			return nil, err
		}
		return reduceEnvs(root, envs)
	case *algebra.Nest:
		envs, err := e.produce(root.Child)
		if err != nil {
			return nil, err
		}
		return nestEnvs(root, envs)
	default:
		envs, err := e.produce(plan)
		if err != nil {
			return nil, err
		}
		names := make([]string, 0)
		for n := range plan.Bindings() {
			names = append(names, n)
		}
		sort.Strings(names)
		rows := make([]types.Value, 0, len(envs))
		for _, env := range envs {
			vals := make([]types.Value, len(names))
			for i, n := range names {
				vals[i] = env[n]
			}
			rows = append(rows, types.RecordValue(names, vals))
		}
		return &Result{Cols: names, Rows: rows}, nil
	}
}

// produce materializes the stage's output envs (pipelines between stages
// are materialized lists of documents, as in an aggregation pipeline).
func (e *Engine) produce(n algebra.Node) ([]expr.ValueEnv, error) {
	switch x := n.(type) {
	case *algebra.Scan:
		docs, ok := e.colls[x.Dataset]
		if !ok {
			return nil, fmt.Errorf("docstore: collection %q not loaded", x.Dataset)
		}
		// Project: decode per document only the fields the plan references
		// (computed by the caller through scan field lists when available;
		// here the whole doc is decoded lazily on first field access via
		// partial navigation).
		out := make([]expr.ValueEnv, 0, len(docs))
		for _, d := range docs {
			out = append(out, expr.ValueEnv{x.Binding: lazyDoc(d)})
		}
		return out, nil
	case *algebra.Select:
		in, err := e.produce(x.Child)
		if err != nil {
			return nil, err
		}
		out := in[:0:0]
		for _, env := range in {
			v, err := expr.Eval(x.Pred, env)
			if err != nil {
				return nil, err
			}
			if v.Bool() {
				out = append(out, env)
			}
		}
		return out, nil
	case *algebra.Unnest:
		in, err := e.produce(x.Child)
		if err != nil {
			return nil, err
		}
		var out []expr.ValueEnv
		for _, env := range in {
			coll, err := expr.Eval(x.Path, env)
			if err != nil {
				return nil, err
			}
			if len(coll.Elems) == 0 && x.Outer {
				merged := cloneEnv(env)
				merged[x.Binding] = types.NullValue()
				out = append(out, merged)
				continue
			}
			for _, el := range coll.Elems {
				merged := cloneEnv(env)
				merged[x.Binding] = el
				if x.Pred != nil {
					v, err := expr.Eval(x.Pred, merged)
					if err != nil {
						return nil, err
					}
					if !v.Bool() {
						continue
					}
				}
				out = append(out, merged)
			}
		}
		return out, nil
	case *algebra.Join:
		return e.mapReduceJoin(x)
	default:
		return nil, fmt.Errorf("docstore: unsupported operator %T", n)
	}
}

// lazyDoc decodes a document fully. Document stores decode whole objects
// when handed to generic operators; the decode per query per document is
// the cost the paper's MongoDB measurements carry.
func lazyDoc(d []byte) types.Value { return Decode(d) }

func cloneEnv(env expr.ValueEnv) expr.ValueEnv {
	out := make(expr.ValueEnv, len(env)+1)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// mapReduceJoin emulates a join the way map-reduce over a document store
// does: both inputs are fully materialized, the build side is grouped by
// the emitted key, and matches are merged per probe document.
func (e *Engine) mapReduceJoin(j *algebra.Join) ([]expr.ValueEnv, error) {
	keysL, keysR, residual := j.EquiKeys()
	left, err := e.produce(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.produce(j.Right)
	if err != nil {
		return nil, err
	}
	if len(keysL) == 0 {
		return nil, fmt.Errorf("docstore: joins require equality conditions")
	}
	groups := map[string][]expr.ValueEnv{}
	for _, env := range right {
		key := ""
		null := false
		for _, k := range keysR {
			v, err := expr.Eval(k, env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			key += v.String() + "\x00"
		}
		if !null {
			groups[key] = append(groups[key], env)
		}
	}
	res := expr.Conjoin(residual)
	var out []expr.ValueEnv
	for _, env := range left {
		key := ""
		null := false
		for _, k := range keysL {
			v, err := expr.Eval(k, env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			key += v.String() + "\x00"
		}
		var matches []expr.ValueEnv
		if !null {
			matches = groups[key]
		}
		matched := false
		for _, renv := range matches {
			merged := cloneEnv(env)
			for k, v := range renv {
				merged[k] = v
			}
			if res != nil {
				v, err := expr.Eval(res, merged)
				if err != nil {
					return nil, err
				}
				if !v.Bool() {
					continue
				}
			}
			matched = true
			out = append(out, merged)
		}
		if !matched && j.Outer {
			merged := cloneEnv(env)
			for name := range j.Right.Bindings() {
				merged[name] = types.NullValue()
			}
			out = append(out, merged)
		}
	}
	return out, nil
}
