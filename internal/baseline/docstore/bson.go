// Package docstore is the document-store baseline (the paper's MongoDB
// stand-in, §7). Documents are loaded into a BSON-like binary serialization
// (the load cost the paper charges MongoDB); queries navigate the binary
// form per document to extract exactly the fields they need. Scans,
// filters, and unwinds of denormalized arrays are efficient; joins are not
// first-class and are emulated map-reduce style, reproducing the paper's
// observation that document stores are unsuitable for join-heavy work.
package docstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"proteus/internal/types"
)

// Binary layout ("BSON-lite", little-endian):
//
//	document: u32 byteLen, then fields until exhausted
//	field:    u8 kind, u16 nameLen, name, value
//	value:    int64 | float64 bits | bool byte | u32 len + bytes (string)
//	          | document | array
//	array:    u32 byteLen, u32 count, then elements (u8 kind + value)
const (
	bNull   byte = 0
	bBool   byte = 1
	bInt    byte = 2
	bFloat  byte = 3
	bString byte = 4
	bDoc    byte = 5
	bArray  byte = 6
)

// Encode serializes a record value into the binary document form.
func Encode(v types.Value) ([]byte, error) {
	if v.Kind != types.KindRecord {
		return nil, fmt.Errorf("docstore: only records can be top-level documents, got %s", v.Kind)
	}
	body, err := encodeDocBody(v)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(body)+4)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	return append(out, body...), nil
}

func encodeDocBody(v types.Value) ([]byte, error) {
	var out []byte
	for i, name := range v.Rec.Names {
		fv := v.Rec.Values[i]
		out = append(out, kindByteOf(fv))
		out = binary.LittleEndian.AppendUint16(out, uint16(len(name)))
		out = append(out, name...)
		enc, err := encodeValue(fv)
		if err != nil {
			return nil, err
		}
		out = append(out, enc...)
	}
	return out, nil
}

func kindByteOf(v types.Value) byte {
	switch v.Kind {
	case types.KindBool:
		return bBool
	case types.KindInt:
		return bInt
	case types.KindFloat:
		return bFloat
	case types.KindString:
		return bString
	case types.KindRecord:
		return bDoc
	case types.KindList, types.KindBag:
		return bArray
	default:
		return bNull
	}
}

func encodeValue(v types.Value) ([]byte, error) {
	switch v.Kind {
	case types.KindNull:
		return nil, nil
	case types.KindBool:
		if v.Bool() {
			return []byte{1}, nil
		}
		return []byte{0}, nil
	case types.KindInt:
		return binary.LittleEndian.AppendUint64(nil, uint64(v.I)), nil
	case types.KindFloat:
		return binary.LittleEndian.AppendUint64(nil, math.Float64bits(v.F)), nil
	case types.KindString:
		out := binary.LittleEndian.AppendUint32(nil, uint32(len(v.S)))
		return append(out, v.S...), nil
	case types.KindRecord:
		body, err := encodeDocBody(v)
		if err != nil {
			return nil, err
		}
		out := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
		return append(out, body...), nil
	case types.KindList, types.KindBag:
		var body []byte
		body = binary.LittleEndian.AppendUint32(body, uint32(len(v.Elems)))
		for _, el := range v.Elems {
			body = append(body, kindByteOf(el))
			enc, err := encodeValue(el)
			if err != nil {
				return nil, err
			}
			body = append(body, enc...)
		}
		out := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
		return append(out, body...), nil
	}
	return nil, fmt.Errorf("docstore: cannot encode %s", v.Kind)
}

// valueSize returns the encoded byte size of a value of the given kind
// starting at data[pos].
func valueSize(kind byte, data []byte, pos int) int {
	switch kind {
	case bNull:
		return 0
	case bBool:
		return 1
	case bInt, bFloat:
		return 8
	case bString:
		return 4 + int(binary.LittleEndian.Uint32(data[pos:]))
	case bDoc, bArray:
		return 4 + int(binary.LittleEndian.Uint32(data[pos:]))
	}
	return 0
}

// GetField navigates the binary document for a dotted path and decodes just
// that value — the per-query access path of the document store.
func GetField(doc []byte, path []string) (types.Value, bool) {
	body := doc[4:]
	for depth, name := range path {
		pos := 0
		found := false
		for pos < len(body) {
			kind := body[pos]
			nameLen := int(binary.LittleEndian.Uint16(body[pos+1:]))
			fieldName := string(body[pos+3 : pos+3+nameLen])
			valPos := pos + 3 + nameLen
			size := valueSize(kind, body, valPos)
			if fieldName == name {
				if depth == len(path)-1 {
					return decodeValue(kind, body[valPos:valPos+size]), true
				}
				if kind != bDoc {
					return types.Value{}, false
				}
				body = body[valPos+4 : valPos+size]
				found = true
				break
			}
			pos = valPos + size
		}
		if !found {
			return types.Value{}, false
		}
	}
	return types.Value{}, false
}

func decodeValue(kind byte, data []byte) types.Value {
	switch kind {
	case bBool:
		return types.BoolValue(data[0] != 0)
	case bInt:
		return types.IntValue(int64(binary.LittleEndian.Uint64(data)))
	case bFloat:
		return types.FloatValue(math.Float64frombits(binary.LittleEndian.Uint64(data)))
	case bString:
		n := int(binary.LittleEndian.Uint32(data))
		return types.StringValue(string(data[4 : 4+n]))
	case bDoc:
		return decodeDoc(data)
	case bArray:
		body := data[4:]
		count := int(binary.LittleEndian.Uint32(body))
		pos := 4
		elems := make([]types.Value, 0, count)
		for i := 0; i < count; i++ {
			k := body[pos]
			pos++
			size := valueSize(k, body, pos)
			elems = append(elems, decodeValue(k, body[pos:pos+size]))
			pos += size
		}
		return types.ListValue(elems...)
	}
	return types.NullValue()
}

// decodeDoc decodes a full (sub-)document (data includes the length
// prefix).
func decodeDoc(data []byte) types.Value {
	body := data[4:]
	var names []string
	var vals []types.Value
	pos := 0
	for pos < len(body) {
		kind := body[pos]
		nameLen := int(binary.LittleEndian.Uint16(body[pos+1:]))
		name := string(body[pos+3 : pos+3+nameLen])
		valPos := pos + 3 + nameLen
		size := valueSize(kind, body, valPos)
		names = append(names, name)
		vals = append(vals, decodeValue(kind, body[valPos:valPos+size]))
		pos = valPos + size
	}
	return types.RecordValue(names, vals)
}

// Decode decodes a whole top-level document.
func Decode(doc []byte) types.Value { return decodeDoc(doc) }
