package docstore

import (
	"fmt"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// reduceEnvs runs the $group-without-key stage: aggregates over all envs.
func reduceEnvs(red *algebra.Reduce, envs []expr.ValueEnv) (*Result, error) {
	if len(red.Aggs) == 1 && (red.Aggs[0].Kind == expr.AggBag || red.Aggs[0].Kind == expr.AggList) {
		var rows []types.Value
		for _, env := range envs {
			if red.Pred != nil {
				v, err := expr.Eval(red.Pred, env)
				if err != nil {
					return nil, err
				}
				if !v.Bool() {
					continue
				}
			}
			v, err := expr.Eval(red.Aggs[0].Arg, env)
			if err != nil {
				return nil, err
			}
			rows = append(rows, v)
		}
		return &Result{Cols: red.Names, Rows: rows}, nil
	}
	sums := make([]float64, len(red.Aggs))
	isums := make([]int64, len(red.Aggs))
	counts := make([]int64, len(red.Aggs))
	best := make([]types.Value, len(red.Aggs))
	intOnly := make([]bool, len(red.Aggs))
	for i := range intOnly {
		intOnly[i] = true
	}
	for _, env := range envs {
		if red.Pred != nil {
			v, err := expr.Eval(red.Pred, env)
			if err != nil {
				return nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		for i, a := range red.Aggs {
			if a.Kind == expr.AggCount {
				counts[i]++
				continue
			}
			v, err := expr.Eval(a.Arg, env)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				continue
			}
			switch a.Kind {
			case expr.AggSum, expr.AggAvg:
				if v.Kind != types.KindInt {
					intOnly[i] = false
				}
				sums[i] += v.AsFloat()
				isums[i] += v.AsInt()
				counts[i]++
			case expr.AggMax:
				if counts[i] == 0 || types.Compare(v, best[i]) > 0 {
					best[i] = v
				}
				counts[i]++
			case expr.AggMin:
				if counts[i] == 0 || types.Compare(v, best[i]) < 0 {
					best[i] = v
				}
				counts[i]++
			default:
				return nil, fmt.Errorf("docstore: unsupported aggregate %s", a.Kind)
			}
		}
	}
	vals := make([]types.Value, len(red.Aggs))
	for i, a := range red.Aggs {
		switch a.Kind {
		case expr.AggCount:
			vals[i] = types.IntValue(counts[i])
		case expr.AggSum:
			switch {
			case counts[i] == 0:
				vals[i] = types.NullValue()
			case intOnly[i]:
				vals[i] = types.IntValue(isums[i])
			default:
				vals[i] = types.FloatValue(sums[i])
			}
		case expr.AggAvg:
			if counts[i] == 0 {
				vals[i] = types.NullValue()
			} else {
				vals[i] = types.FloatValue(sums[i] / float64(counts[i]))
			}
		default:
			if counts[i] == 0 {
				vals[i] = types.NullValue()
			} else {
				vals[i] = best[i]
			}
		}
	}
	return &Result{Cols: red.Names, Rows: []types.Value{types.RecordValue(red.Names, vals)}}, nil
}

// nestEnvs runs the $group stage keyed by the group-by expressions.
func nestEnvs(n *algebra.Nest, envs []expr.ValueEnv) (*Result, error) {
	type grp struct {
		keyVals []types.Value
		envs    []expr.ValueEnv
	}
	groups := map[string]*grp{}
	var order []string
	for _, env := range envs {
		if n.Pred != nil {
			v, err := expr.Eval(n.Pred, env)
			if err != nil {
				return nil, err
			}
			if !v.Bool() {
				continue
			}
		}
		key := ""
		keyVals := make([]types.Value, len(n.GroupBy))
		for i, g := range n.GroupBy {
			v, err := expr.Eval(g, env)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			key += v.String() + "\x00"
		}
		g, ok := groups[key]
		if !ok {
			g = &grp{keyVals: keyVals}
			groups[key] = g
			order = append(order, key)
		}
		g.envs = append(g.envs, env)
	}
	sort.Strings(order)
	names := append(append([]string{}, n.GroupNames...), n.AggNames...)
	rows := make([]types.Value, 0, len(order))
	for _, key := range order {
		g := groups[key]
		sub := &algebra.Reduce{Aggs: n.Aggs, Names: n.AggNames}
		res, err := reduceEnvs(sub, g.envs)
		if err != nil {
			return nil, err
		}
		vals := make([]types.Value, 0, len(names))
		vals = append(vals, g.keyVals...)
		vals = append(vals, res.Rows[0].Rec.Values...)
		rows = append(rows, types.RecordValue(names, vals))
	}
	return &Result{Cols: names, Rows: rows}, nil
}
