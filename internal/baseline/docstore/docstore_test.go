package docstore

import (
	"testing"
	"testing/quick"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

func doc(names []string, vals ...types.Value) types.Value {
	return types.RecordValue(names, vals)
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	v := doc([]string{"i", "f", "s", "b", "nested", "arr", "nul"},
		types.IntValue(-42),
		types.FloatValue(2.5),
		types.StringValue("héllo"),
		types.BoolValue(true),
		doc([]string{"x"}, types.IntValue(7)),
		types.ListValue(types.IntValue(1), types.StringValue("two"),
			doc([]string{"y"}, types.FloatValue(3.5))),
		types.NullValue(),
	)
	data, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	got := Decode(data)
	if types.Compare(got, v) != 0 {
		t.Fatalf("roundtrip:\n got %s\nwant %s", got, v)
	}
}

func TestEncodeRejectsNonRecords(t *testing.T) {
	if _, err := Encode(types.IntValue(1)); err == nil {
		t.Error("scalar top-level should be rejected")
	}
}

func TestGetFieldNavigation(t *testing.T) {
	v := doc([]string{"a", "b", "c"},
		types.IntValue(1),
		doc([]string{"d"}, doc([]string{"e"}, types.StringValue("deep"))),
		types.FloatValue(9.5),
	)
	data, _ := Encode(v)
	if got, ok := GetField(data, []string{"c"}); !ok || got.F != 9.5 {
		t.Errorf("c = %v, %v", got, ok)
	}
	if got, ok := GetField(data, []string{"b", "d", "e"}); !ok || got.S != "deep" {
		t.Errorf("b.d.e = %v, %v", got, ok)
	}
	if _, ok := GetField(data, []string{"zz"}); ok {
		t.Error("missing field should not be found")
	}
	if _, ok := GetField(data, []string{"a", "x"}); ok {
		t.Error("path through scalar should fail")
	}
}

func TestRoundtripProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		v := doc([]string{"i", "f", "s", "b"},
			types.IntValue(i), types.FloatValue(fl), types.StringValue(s), types.BoolValue(b))
		data, err := Encode(v)
		if err != nil {
			return false
		}
		return types.Compare(Decode(data), v) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func loadTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New()
	names := []string{"id", "grp", "tags"}
	rows := []types.Value{
		doc(names, types.IntValue(1), types.IntValue(1),
			types.ListValue(doc([]string{"w"}, types.IntValue(5)), doc([]string{"w"}, types.IntValue(9)))),
		doc(names, types.IntValue(2), types.IntValue(1), types.ListValue()),
		doc(names, types.IntValue(3), types.IntValue(2),
			types.ListValue(doc([]string{"w"}, types.IntValue(7)))),
	}
	if err := e.Load("docs", rows); err != nil {
		t.Fatal(err)
	}
	if e.Docs("docs") != 3 {
		t.Fatalf("docs = %d", e.Docs("docs"))
	}
	return e
}

func fieldOf(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }

func docsSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "grp", Type: types.Int},
		types.Field{Name: "tags", Type: types.NewListType(types.NewRecordType(
			types.Field{Name: "w", Type: types.Int},
		))},
	)
}

func TestRunPlanFilterAndCount(t *testing.T) {
	e := loadTestEngine(t)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Select{
			Pred:  &expr.BinOp{Op: expr.OpEq, L: fieldOf("d", "grp"), R: &expr.Const{V: types.IntValue(1)}},
			Child: &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestRunPlanUnwind(t *testing.T) {
	e := loadTestEngine(t)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("tg", "w")}},
		Names: []string{"s"},
		Child: &algebra.Unnest{
			Path:    fieldOf("d", "tags"),
			Binding: "tg",
			Child:   &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 21 {
		t.Fatalf("sum = %d, want 21", got)
	}
}

func TestRunPlanMapReduceJoin(t *testing.T) {
	e := loadTestEngine(t)
	other := []types.Value{
		doc([]string{"id", "v"}, types.IntValue(1), types.IntValue(100)),
		doc([]string{"id", "v"}, types.IntValue(3), types.IntValue(300)),
		doc([]string{"id", "v"}, types.IntValue(9), types.IntValue(900)),
	}
	if err := e.Load("other", other); err != nil {
		t.Fatal(err)
	}
	otherSchema := types.NewRecordType(
		types.Field{Name: "id", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("o", "v")}},
		Names: []string{"s"},
		Child: &algebra.Join{
			Pred:  &expr.BinOp{Op: expr.OpEq, L: fieldOf("d", "id"), R: fieldOf("o", "id")},
			Left:  &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema()},
			Right: &algebra.Scan{Dataset: "other", Binding: "o", Type: otherSchema},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 400 {
		t.Fatalf("sum = %d, want 400", got)
	}
}

func TestRunPlanGroup(t *testing.T) {
	e := loadTestEngine(t)
	plan := &algebra.Nest{
		GroupBy:    []expr.Expr{fieldOf("d", "grp")},
		GroupNames: []string{"grp"},
		Aggs:       []expr.Agg{{Kind: expr.AggCount}},
		AggNames:   []string{"n"},
		Child:      &algebra.Scan{Dataset: "docs", Binding: "d", Type: docsSchema()},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
}

func TestRunPlanErrors(t *testing.T) {
	e := loadTestEngine(t)
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Scan{Dataset: "ghost", Binding: "g", Type: docsSchema()},
	}
	if _, err := e.RunPlan(plan); err == nil {
		t.Error("unknown collection should fail")
	}
}
