package columnar

import (
	"testing"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

func tSchema() *types.RecordType {
	return types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "f", Type: types.Float},
		types.Field{Name: "s", Type: types.String},
	)
}

func rows() []types.Value {
	names := []string{"a", "f", "s"}
	mk := func(a int64, f float64, s string) types.Value {
		return types.RecordValue(names, []types.Value{
			types.IntValue(a), types.FloatValue(f), types.StringValue(s)})
	}
	// Deliberately unsorted on a.
	return []types.Value{
		mk(3, 0.5, "cc"), mk(1, 1.5, "aa"), mk(5, 2.5, "bb"), mk(2, 3.5, "aa"), mk(4, 4.5, "dd"),
	}
}

func fieldOf(b, n string) expr.Expr { return &expr.FieldAcc{Base: &expr.Ref{Name: b}, Name: n} }

func loadEngine(t *testing.T, sortBy string) *Engine {
	t.Helper()
	e := New()
	if err := e.Load("t", tSchema(), rows(), sortBy); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestScanFilterAggregate(t *testing.T) {
	e := loadEngine(t, "")
	plan := &algebra.Reduce{
		Aggs: []expr.Agg{
			{Kind: expr.AggCount},
			{Kind: expr.AggSum, Arg: fieldOf("x", "a")},
			{Kind: expr.AggMax, Arg: fieldOf("x", "f")},
			{Kind: expr.AggMin, Arg: fieldOf("x", "a")},
			{Kind: expr.AggAvg, Arg: fieldOf("x", "a")},
		},
		Names: []string{"n", "s", "mx", "mn", "av"},
		Child: &algebra.Select{
			Pred:  &expr.BinOp{Op: expr.OpLe, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(4)}},
			Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if v, _ := row.Field("n"); v.AsInt() != 4 {
		t.Errorf("n = %s", v)
	}
	if v, _ := row.Field("s"); v.AsInt() != 10 {
		t.Errorf("sum = %s", v)
	}
	if v, _ := row.Field("mx"); v.F != 4.5 {
		t.Errorf("max f = %s", v)
	}
	if v, _ := row.Field("av"); v.AsFloat() != 2.5 {
		t.Errorf("avg = %s", v)
	}
}

func TestSortedSkipMatchesPlainScan(t *testing.T) {
	plain := loadEngine(t, "")
	sorted := loadEngine(t, "a")
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Select{
			Pred:  &expr.BinOp{Op: expr.OpLt, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(4)}},
			Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		},
	}
	r1, err := plain.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sorted.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Scalar().AsInt() != 3 || r2.Scalar().AsInt() != 3 {
		t.Fatalf("counts = %d / %d, want 3", r1.Scalar().AsInt(), r2.Scalar().AsInt())
	}
}

func TestArithmeticVectors(t *testing.T) {
	e := loadEngine(t, "")
	plan := &algebra.Reduce{
		Aggs: []expr.Agg{{Kind: expr.AggSum, Arg: &expr.BinOp{
			Op: expr.OpMul, L: fieldOf("x", "a"), R: &expr.Const{V: types.IntValue(10)},
		}}},
		Names: []string{"s"},
		Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 150 {
		t.Fatalf("sum = %d, want 150", got)
	}
}

func TestJoinRowIDs(t *testing.T) {
	e := loadEngine(t, "")
	uSchema := types.NewRecordType(
		types.Field{Name: "a", Type: types.Int},
		types.Field{Name: "v", Type: types.Int},
	)
	uRows := []types.Value{
		types.RecordValue([]string{"a", "v"}, []types.Value{types.IntValue(1), types.IntValue(10)}),
		types.RecordValue([]string{"a", "v"}, []types.Value{types.IntValue(5), types.IntValue(50)}),
	}
	if err := e.Load("u", uSchema, uRows, ""); err != nil {
		t.Fatal(err)
	}
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggSum, Arg: fieldOf("y", "v")}},
		Names: []string{"s"},
		Child: &algebra.Join{
			Pred:  &expr.BinOp{Op: expr.OpEq, L: fieldOf("x", "a"), R: fieldOf("y", "a")},
			Left:  &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
			Right: &algebra.Scan{Dataset: "u", Binding: "y", Type: uSchema},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 60 {
		t.Fatalf("sum = %d, want 60", got)
	}
}

func TestGroupByCountTrick(t *testing.T) {
	e := loadEngine(t, "")
	plan := &algebra.Nest{
		GroupBy:    []expr.Expr{fieldOf("x", "s")},
		GroupNames: []string{"s"},
		Aggs:       []expr.Agg{{Kind: expr.AggCount}},
		AggNames:   []string{"n"},
		Child:      &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		s, _ := row.Field("s")
		n, _ := row.Field("n")
		want := int64(1)
		if s.S == "aa" {
			want = 2
		}
		if n.AsInt() != want {
			t.Errorf("group %s count = %s, want %d", s, n, want)
		}
	}
}

func TestLikeFilter(t *testing.T) {
	e := loadEngine(t, "")
	plan := &algebra.Reduce{
		Aggs:  []expr.Agg{{Kind: expr.AggCount}},
		Names: []string{"n"},
		Child: &algebra.Select{
			Pred:  &expr.Like{E: fieldOf("x", "s"), Needle: "a"},
			Child: &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
		},
	}
	res, err := e.RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Scalar().AsInt(); got != 2 {
		t.Fatalf("count = %d, want 2 (aa twice)", got)
	}
}

func TestUnsupportedShapes(t *testing.T) {
	e := loadEngine(t, "")
	// Unnest is not columnar territory (the paper excludes MonetDB there).
	plan := &algebra.Unnest{
		Path:    fieldOf("x", "s"),
		Binding: "c",
		Child:   &algebra.Scan{Dataset: "t", Binding: "x", Type: tSchema()},
	}
	if _, err := e.RunPlan(plan); err == nil {
		t.Error("unnest should be unsupported")
	}
	// Nested schemas are rejected at load.
	nested := types.NewRecordType(
		types.Field{Name: "xs", Type: types.NewListType(types.Int)},
	)
	if err := e.Load("bad", nested, nil, ""); err == nil {
		t.Error("nested schema should be rejected")
	}
	if err := e.Load("bad2", tSchema(), rows(), "nope"); err == nil {
		t.Error("unknown sort column should be rejected")
	}
}
