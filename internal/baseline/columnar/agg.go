package columnar

import (
	"fmt"
	"math"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// reduceChunk computes the root aggregates over a fully materialized chunk.
func (e *Engine) reduceChunk(red *algebra.Reduce, ch *chunk) (*Result, error) {
	if len(red.Aggs) == 1 && (red.Aggs[0].Kind == expr.AggBag || red.Aggs[0].Kind == expr.AggList) {
		vec, err := evalVec(red.Aggs[0].Arg, ch)
		if err != nil {
			// Record outputs: fall back to per-row boxing.
			return chunkResult(ch)
		}
		rows := make([]types.Value, ch.n)
		for i := 0; i < ch.n; i++ {
			rows[i] = vec.value(i)
		}
		return &Result{Cols: red.Names, Rows: rows}, nil
	}
	vals := make([]types.Value, len(red.Aggs))
	for i, a := range red.Aggs {
		v, err := aggVec(a, ch)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	return &Result{
		Cols: red.Names,
		Rows: []types.Value{types.RecordValue(red.Names, vals)},
	}, nil
}

// aggVec computes one aggregate over the chunk, evaluating the argument as
// a whole column first (another materialized intermediate).
func aggVec(a expr.Agg, ch *chunk) (types.Value, error) {
	if a.Kind == expr.AggCount {
		return types.IntValue(int64(ch.n)), nil
	}
	vec, err := evalVec(a.Arg, ch)
	if err != nil {
		return types.Value{}, err
	}
	if vec.Len() == 0 && a.Kind != expr.AggCount {
		return types.NullValue(), nil
	}
	switch a.Kind {
	case expr.AggSum:
		if vec.Kind == types.KindInt {
			var s int64
			for _, v := range vec.Ints {
				s += v
			}
			return types.IntValue(s), nil
		}
		var s float64
		for _, v := range vec.Floats {
			s += v
		}
		return types.FloatValue(s), nil
	case expr.AggMax:
		if vec.Kind == types.KindInt {
			best := int64(math.MinInt64)
			for _, v := range vec.Ints {
				if v > best {
					best = v
				}
			}
			return types.IntValue(best), nil
		}
		best := math.Inf(-1)
		for _, v := range vec.Floats {
			if v > best {
				best = v
			}
		}
		return types.FloatValue(best), nil
	case expr.AggMin:
		if vec.Kind == types.KindInt {
			best := int64(math.MaxInt64)
			for _, v := range vec.Ints {
				if v < best {
					best = v
				}
			}
			return types.IntValue(best), nil
		}
		best := math.Inf(1)
		for _, v := range vec.Floats {
			if v < best {
				best = v
			}
		}
		return types.FloatValue(best), nil
	case expr.AggAvg:
		fs := vec.asFloats()
		var s float64
		for _, v := range fs {
			s += v
		}
		if len(fs) == 0 {
			return types.NullValue(), nil
		}
		return types.FloatValue(s / float64(len(fs))), nil
	}
	return types.Value{}, fmt.Errorf("columnar: unsupported aggregate %s", a.Kind)
}

// nestChunk groups the chunk by the key columns. MonetDB's count trick is
// modeled: a lone COUNT comes straight from the group bucket sizes without
// touching any aggregate column.
func (e *Engine) nestChunk(n *algebra.Nest, ch *chunk) (*Result, error) {
	keyVecs := make([]*Vector, len(n.GroupBy))
	for i, g := range n.GroupBy {
		v, err := evalVec(g, ch)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	// Bucket rows per key.
	buckets := map[string][]int32{}
	keyVal := map[string][]types.Value{}
	var order []string
	for i := 0; i < ch.n; i++ {
		k := rowKey(keyVecs, i)
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
			kv := make([]types.Value, len(keyVecs))
			for j, v := range keyVecs {
				kv[j] = v.value(i)
			}
			keyVal[k] = kv
		}
		buckets[k] = append(buckets[k], int32(i))
	}
	sort.Strings(order)

	countOnly := len(n.Aggs) == 1 && n.Aggs[0].Kind == expr.AggCount
	names := append(append([]string{}, n.GroupNames...), n.AggNames...)
	rows := make([]types.Value, 0, len(order))
	for _, k := range order {
		sel := buckets[k]
		vals := make([]types.Value, 0, len(names))
		vals = append(vals, keyVal[k]...)
		if countOnly {
			// The group's size is the bucket length — no gather needed.
			vals = append(vals, types.IntValue(int64(len(sel))))
		} else {
			sub := gatherChunk(ch, sel) // materialize each group's columns
			for _, a := range n.Aggs {
				v, err := aggVec(a, sub)
				if err != nil {
					return nil, err
				}
				vals = append(vals, v)
			}
		}
		rows = append(rows, types.RecordValue(names, vals))
	}
	return &Result{Cols: names, Rows: rows}, nil
}
