// Package columnar is the read-optimized column-store baseline (the
// paper's MonetDB / DBMS-C stand-in, §7). It executes the same algebra
// plans operator-at-a-time: every operator consumes whole column vectors
// and fully materializes its output before the next operator starts — the
// execution model whose materialization cost grows as queries become less
// selective, which is exactly the crossover the paper's binary-data figures
// show. Like DBMS-C, a table may be sorted on load, letting selections on
// the sort key skip data with a binary search instead of scanning.
package columnar

import (
	"fmt"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// Vector is one typed column of intermediate or base data.
type Vector struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string
}

// Len returns the vector's row count.
func (v *Vector) Len() int {
	switch v.Kind {
	case types.KindInt:
		return len(v.Ints)
	case types.KindFloat:
		return len(v.Floats)
	case types.KindBool:
		return len(v.Bools)
	default:
		return len(v.Strs)
	}
}

// gather materializes the selected rows into a fresh vector — the
// per-operator copy the model pays.
func (v *Vector) gather(sel []int32) *Vector {
	out := &Vector{Kind: v.Kind}
	switch v.Kind {
	case types.KindInt:
		out.Ints = make([]int64, len(sel))
		for i, s := range sel {
			out.Ints[i] = v.Ints[s]
		}
	case types.KindFloat:
		out.Floats = make([]float64, len(sel))
		for i, s := range sel {
			out.Floats[i] = v.Floats[s]
		}
	case types.KindBool:
		out.Bools = make([]bool, len(sel))
		for i, s := range sel {
			out.Bools[i] = v.Bools[s]
		}
	default:
		out.Strs = make([]string, len(sel))
		for i, s := range sel {
			out.Strs[i] = v.Strs[s]
		}
	}
	return out
}

func (v *Vector) slice(n int) *Vector {
	out := &Vector{Kind: v.Kind}
	switch v.Kind {
	case types.KindInt:
		out.Ints = v.Ints[:n]
	case types.KindFloat:
		out.Floats = v.Floats[:n]
	case types.KindBool:
		out.Bools = v.Bools[:n]
	default:
		out.Strs = v.Strs[:n]
	}
	return out
}

func (v *Vector) value(i int) types.Value {
	switch v.Kind {
	case types.KindInt:
		return types.IntValue(v.Ints[i])
	case types.KindFloat:
		return types.FloatValue(v.Floats[i])
	case types.KindBool:
		return types.BoolValue(v.Bools[i])
	default:
		return types.StringValue(v.Strs[i])
	}
}

// Table is a loaded columnar table, optionally sorted on one column.
type Table struct {
	Schema   *types.RecordType
	Cols     map[string]*Vector
	RowCount int
	SortedBy string
}

// Engine holds loaded tables.
type Engine struct {
	tables map[string]*Table
}

// New returns an empty engine.
func New() *Engine { return &Engine{tables: map[string]*Table{}} }

// Load ingests boxed rows into column vectors; sortBy optionally sorts the
// table on an integer column at load time (DBMS-C's trick).
func (e *Engine) Load(name string, schema *types.RecordType, rows []types.Value, sortBy string) error {
	if sortBy != "" {
		idx := schema.Index(sortBy)
		if idx < 0 {
			return fmt.Errorf("columnar: sort column %q not in schema", sortBy)
		}
		sorted := append([]types.Value(nil), rows...)
		sort.SliceStable(sorted, func(i, j int) bool {
			a, _ := sorted[i].Field(sortBy)
			b, _ := sorted[j].Field(sortBy)
			return types.Compare(a, b) < 0
		})
		rows = sorted
	}
	t := &Table{Schema: schema, Cols: map[string]*Vector{}, RowCount: len(rows), SortedBy: sortBy}
	for _, f := range schema.Fields {
		v := &Vector{Kind: f.Type.Kind()}
		switch f.Type.Kind() {
		case types.KindInt:
			v.Ints = make([]int64, 0, len(rows))
		case types.KindFloat:
			v.Floats = make([]float64, 0, len(rows))
		case types.KindBool:
			v.Bools = make([]bool, 0, len(rows))
		case types.KindString:
			v.Strs = make([]string, 0, len(rows))
		default:
			return fmt.Errorf("columnar: unsupported column type %s (flat relational data only)", f.Type)
		}
		t.Cols[f.Name] = v
	}
	for _, row := range rows {
		for _, f := range schema.Fields {
			fv, _ := row.Field(f.Name)
			v := t.Cols[f.Name]
			switch f.Type.Kind() {
			case types.KindInt:
				v.Ints = append(v.Ints, fv.AsInt())
			case types.KindFloat:
				v.Floats = append(v.Floats, fv.AsFloat())
			case types.KindBool:
				v.Bools = append(v.Bools, fv.Bool())
			case types.KindString:
				v.Strs = append(v.Strs, fv.S)
			}
		}
	}
	e.tables[name] = t
	return nil
}

// chunk is a fully materialized intermediate: column vectors keyed by
// "binding.field".
type chunk struct {
	cols map[string]*Vector
	n    int
	// provenance for the sorted-skip optimization: set only when the chunk
	// is an unfiltered base-table scan.
	baseSorted string // "binding.field" of the sort key, or ""
}

// Result mirrors exec.Result.
type Result struct {
	Cols []string
	Rows []types.Value
}

// Scalar returns the single value of a 1×1 result.
func (r *Result) Scalar() types.Value {
	if len(r.Rows) == 1 && r.Rows[0].Kind == types.KindRecord && len(r.Rows[0].Rec.Values) == 1 {
		return r.Rows[0].Rec.Values[0]
	}
	return types.Value{}
}

// RunPlan interprets an algebra plan operator-at-a-time.
func (e *Engine) RunPlan(plan algebra.Node) (*Result, error) {
	switch root := plan.(type) {
	case *algebra.Reduce:
		ch, err := e.evalNode(root.Child, neededPaths(plan))
		if err != nil {
			return nil, err
		}
		if root.Pred != nil {
			ch, err = e.filter(ch, root.Pred)
			if err != nil {
				return nil, err
			}
		}
		return e.reduceChunk(root, ch)
	case *algebra.Nest:
		ch, err := e.evalNode(root.Child, neededPaths(plan))
		if err != nil {
			return nil, err
		}
		if root.Pred != nil {
			ch, err = e.filter(ch, root.Pred)
			if err != nil {
				return nil, err
			}
		}
		return e.nestChunk(root, ch)
	default:
		ch, err := e.evalNode(plan, neededPaths(plan))
		if err != nil {
			return nil, err
		}
		return chunkResult(ch)
	}
}

func chunkResult(ch *chunk) (*Result, error) {
	names := make([]string, 0, len(ch.cols))
	for k := range ch.cols {
		names = append(names, k)
	}
	sort.Strings(names)
	rows := make([]types.Value, ch.n)
	for i := 0; i < ch.n; i++ {
		vals := make([]types.Value, len(names))
		for j, nm := range names {
			vals[j] = ch.cols[nm].value(i)
		}
		rows[i] = types.RecordValue(names, vals)
	}
	return &Result{Cols: names, Rows: rows}, nil
}

// neededPaths collects binding.field references across the plan so scans
// only load the touched columns.
func neededPaths(plan algebra.Node) map[string]map[string]bool {
	needs := map[string]map[string]bool{}
	add := func(root, path string) {
		set := needs[root]
		if set == nil {
			set = map[string]bool{}
			needs[root] = set
		}
		set[path] = true
	}
	var addExpr func(e expr.Expr)
	addExpr = func(e expr.Expr) {
		if e == nil {
			return
		}
		if root, path, ok := expr.PathOf(e); ok && len(path) == 1 {
			add(root, path[0])
			return
		}
		switch x := e.(type) {
		case *expr.BinOp:
			addExpr(x.L)
			addExpr(x.R)
		case *expr.Not:
			addExpr(x.E)
		case *expr.Neg:
			addExpr(x.E)
		case *expr.IsNull:
			addExpr(x.E)
		case *expr.Like:
			addExpr(x.E)
		case *expr.RecordCtor:
			for _, s := range x.Exprs {
				addExpr(s)
			}
		}
	}
	algebra.Walk(plan, func(n algebra.Node) bool {
		switch x := n.(type) {
		case *algebra.Select:
			addExpr(x.Pred)
		case *algebra.Join:
			addExpr(x.Pred)
		case *algebra.Reduce:
			addExpr(x.Pred)
			for _, a := range x.Aggs {
				addExpr(a.Arg)
			}
		case *algebra.Nest:
			addExpr(x.Pred)
			for _, g := range x.GroupBy {
				addExpr(g)
			}
			for _, a := range x.Aggs {
				addExpr(a.Arg)
			}
		}
		return true
	})
	return needs
}

// evalNode materializes the chunk for a subtree.
func (e *Engine) evalNode(n algebra.Node, needs map[string]map[string]bool) (*chunk, error) {
	switch x := n.(type) {
	case *algebra.Scan:
		t, ok := e.tables[x.Dataset]
		if !ok {
			return nil, fmt.Errorf("columnar: table %q not loaded", x.Dataset)
		}
		ch := &chunk{cols: map[string]*Vector{}, n: t.RowCount}
		for f := range needs[x.Binding] {
			col, ok := t.Cols[f]
			if !ok {
				return nil, fmt.Errorf("columnar: table %q has no column %q", x.Dataset, f)
			}
			ch.cols[x.Binding+"."+f] = col
		}
		if t.SortedBy != "" {
			ch.baseSorted = x.Binding + "." + t.SortedBy
			// The sort key must be present for the skip check even if the
			// query doesn't project it.
			if _, ok := ch.cols[ch.baseSorted]; !ok {
				ch.cols[ch.baseSorted] = t.Cols[t.SortedBy]
			}
		}
		return ch, nil
	case *algebra.Select:
		ch, err := e.evalNode(x.Child, needs)
		if err != nil {
			return nil, err
		}
		return e.filter(ch, x.Pred)
	case *algebra.Join:
		return e.join(x, needs)
	default:
		return nil, fmt.Errorf("columnar: operator %T not supported (flat relational algebra only)", n)
	}
}
