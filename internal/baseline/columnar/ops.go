package columnar

import (
	"fmt"
	"sort"

	"proteus/internal/algebra"
	"proteus/internal/expr"
	"proteus/internal/types"
)

// evalVec evaluates an expression column-at-a-time, materializing a full
// result vector (the model's per-operator cost).
func evalVec(e expr.Expr, ch *chunk) (*Vector, error) {
	switch x := e.(type) {
	case *expr.Const:
		out := &Vector{Kind: x.V.Kind}
		switch x.V.Kind {
		case types.KindInt:
			out.Ints = make([]int64, ch.n)
			for i := range out.Ints {
				out.Ints[i] = x.V.I
			}
		case types.KindFloat:
			out.Floats = make([]float64, ch.n)
			for i := range out.Floats {
				out.Floats[i] = x.V.F
			}
		case types.KindBool:
			out.Bools = make([]bool, ch.n)
			for i := range out.Bools {
				out.Bools[i] = x.V.Bool()
			}
		case types.KindString:
			out.Strs = make([]string, ch.n)
			for i := range out.Strs {
				out.Strs[i] = x.V.S
			}
		default:
			return nil, fmt.Errorf("columnar: unsupported constant kind %s", x.V.Kind)
		}
		return out, nil
	case *expr.Ref, *expr.FieldAcc:
		root, path, ok := expr.PathOf(x)
		if !ok || len(path) != 1 {
			return nil, fmt.Errorf("columnar: unsupported column reference %s", e)
		}
		col, ok := ch.cols[root+"."+path[0]]
		if !ok {
			return nil, fmt.Errorf("columnar: column %s.%s not materialized", root, path[0])
		}
		return col, nil
	case *expr.Neg:
		sub, err := evalVec(x.E, ch)
		if err != nil {
			return nil, err
		}
		if sub.Kind == types.KindInt {
			out := &Vector{Kind: types.KindInt, Ints: make([]int64, sub.Len())}
			for i, v := range sub.Ints {
				out.Ints[i] = -v
			}
			return out, nil
		}
		out := &Vector{Kind: types.KindFloat, Floats: make([]float64, sub.Len())}
		for i, v := range sub.Floats {
			out.Floats[i] = -v
		}
		return out, nil
	case *expr.BinOp:
		if !x.Op.IsArith() {
			return nil, fmt.Errorf("columnar: %s is not an arithmetic expression", e)
		}
		l, err := evalVec(x.L, ch)
		if err != nil {
			return nil, err
		}
		r, err := evalVec(x.R, ch)
		if err != nil {
			return nil, err
		}
		return arith(x.Op, l, r)
	}
	return nil, fmt.Errorf("columnar: cannot evaluate %T column-at-a-time", e)
}

func arith(op expr.BinKind, l, r *Vector) (*Vector, error) {
	n := l.Len()
	if l.Kind == types.KindInt && r.Kind == types.KindInt && op != expr.OpDiv {
		out := &Vector{Kind: types.KindInt, Ints: make([]int64, n)}
		for i := 0; i < n; i++ {
			a, b := l.Ints[i], r.Ints[i]
			switch op {
			case expr.OpAdd:
				out.Ints[i] = a + b
			case expr.OpSub:
				out.Ints[i] = a - b
			case expr.OpMul:
				out.Ints[i] = a * b
			case expr.OpMod:
				if b != 0 {
					out.Ints[i] = a % b
				}
			}
		}
		return out, nil
	}
	lf := l.asFloats()
	rf := r.asFloats()
	out := &Vector{Kind: types.KindFloat, Floats: make([]float64, n)}
	for i := 0; i < n; i++ {
		a, b := lf[i], rf[i]
		switch op {
		case expr.OpAdd:
			out.Floats[i] = a + b
		case expr.OpSub:
			out.Floats[i] = a - b
		case expr.OpMul:
			out.Floats[i] = a * b
		case expr.OpDiv:
			if b != 0 {
				out.Floats[i] = a / b
			}
		default:
			return nil, fmt.Errorf("columnar: unsupported float op %s", op)
		}
	}
	return out, nil
}

func (v *Vector) asFloats() []float64 {
	if v.Kind == types.KindFloat {
		return v.Floats
	}
	out := make([]float64, v.Len())
	for i, x := range v.Ints {
		out[i] = float64(x)
	}
	return out
}

// selectVec produces the selection vector of rows satisfying a comparison.
func selectVec(op expr.BinKind, l, r *Vector) ([]int32, error) {
	n := l.Len()
	sel := make([]int32, 0, n/2)
	switch {
	case l.Kind == types.KindInt && r.Kind == types.KindInt:
		for i := 0; i < n; i++ {
			if cmpSat(op, compareInt(l.Ints[i], r.Ints[i])) {
				sel = append(sel, int32(i))
			}
		}
	case l.Kind == types.KindString && r.Kind == types.KindString:
		for i := 0; i < n; i++ {
			c := 0
			if l.Strs[i] < r.Strs[i] {
				c = -1
			} else if l.Strs[i] > r.Strs[i] {
				c = 1
			}
			if cmpSat(op, c) {
				sel = append(sel, int32(i))
			}
		}
	default:
		lf, rf := l.asFloats(), r.asFloats()
		for i := 0; i < n; i++ {
			c := 0
			if lf[i] < rf[i] {
				c = -1
			} else if lf[i] > rf[i] {
				c = 1
			}
			if cmpSat(op, c) {
				sel = append(sel, int32(i))
			}
		}
	}
	return sel, nil
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpSat(op expr.BinKind, c int) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	case expr.OpGe:
		return c >= 0
	}
	return false
}

// filter applies a predicate operator-at-a-time: each conjunct yields a
// selection vector over the current chunk, and the chunk's columns are
// re-materialized after each conjunct (MonetDB-style intermediate results).
func (e *Engine) filter(ch *chunk, pred expr.Expr) (*chunk, error) {
	for _, conj := range expr.SplitConjuncts(pred) {
		b, ok := conj.(*expr.BinOp)
		if !ok || !b.Op.IsComparison() {
			if like, isLike := conj.(*expr.Like); isLike {
				vec, err := evalVec(like.E, ch)
				if err != nil {
					return nil, err
				}
				sel := make([]int32, 0, ch.n/2)
				for i, s := range vec.Strs {
					if containsStr(s, like.Needle) {
						sel = append(sel, int32(i))
					}
				}
				ch = gatherChunk(ch, sel)
				continue
			}
			return nil, fmt.Errorf("columnar: unsupported predicate %s", conj)
		}
		// Sorted-key skip: base-table scan + "key < const" ⇒ binary search.
		if ch.baseSorted != "" {
			if n, ok := sortedPrefix(ch, b); ok {
				ch = sliceChunk(ch, n)
				continue
			}
		}
		l, err := evalVec(b.L, ch)
		if err != nil {
			return nil, err
		}
		r, err := evalVec(b.R, ch)
		if err != nil {
			return nil, err
		}
		sel, err := selectVec(b.Op, l, r)
		if err != nil {
			return nil, err
		}
		ch = gatherChunk(ch, sel)
	}
	return ch, nil
}

func containsStr(s, needle string) bool {
	return len(needle) == 0 || (len(s) >= len(needle) && indexStr(s, needle) >= 0)
}

func indexStr(s, needle string) int {
	for i := 0; i+len(needle) <= len(s); i++ {
		if s[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

// sortedPrefix recognizes "sortKey < C" / "sortKey <= C" over a sorted base
// chunk and returns the qualifying prefix length.
func sortedPrefix(ch *chunk, b *expr.BinOp) (int, bool) {
	if b.Op != expr.OpLt && b.Op != expr.OpLe {
		return 0, false
	}
	root, path, ok := expr.PathOf(b.L)
	if !ok || len(path) != 1 || root+"."+path[0] != ch.baseSorted {
		return 0, false
	}
	cst, ok := b.R.(*expr.Const)
	if !ok {
		return 0, false
	}
	col := ch.cols[ch.baseSorted]
	if col.Kind != types.KindInt {
		return 0, false
	}
	x := cst.V.AsInt()
	n := sort.Search(len(col.Ints), func(i int) bool {
		if b.Op == expr.OpLt {
			return col.Ints[i] >= x
		}
		return col.Ints[i] > x
	})
	return n, true
}

func gatherChunk(ch *chunk, sel []int32) *chunk {
	out := &chunk{cols: map[string]*Vector{}, n: len(sel)}
	for k, v := range ch.cols {
		out.cols[k] = v.gather(sel)
	}
	return out
}

func sliceChunk(ch *chunk, n int) *chunk {
	out := &chunk{cols: map[string]*Vector{}, n: n}
	for k, v := range ch.cols {
		out.cols[k] = v.slice(n)
	}
	return out
}

// join hash-joins two chunks on their equi-keys, materializing matching
// row-id pairs and then gathering both sides' columns.
func (e *Engine) join(j *algebra.Join, needs map[string]map[string]bool) (*chunk, error) {
	left, err := e.evalNode(j.Left, needs)
	if err != nil {
		return nil, err
	}
	right, err := e.evalNode(j.Right, needs)
	if err != nil {
		return nil, err
	}
	keysL, keysR, residual := j.EquiKeys()
	if len(keysL) == 0 {
		return nil, fmt.Errorf("columnar: non-equi joins not supported")
	}
	lk := make([]*Vector, len(keysL))
	rk := make([]*Vector, len(keysR))
	for i := range keysL {
		v, err := evalVec(keysL[i], left)
		if err != nil {
			return nil, err
		}
		lk[i] = v
		w, err := evalVec(keysR[i], right)
		if err != nil {
			return nil, err
		}
		rk[i] = w
	}
	// Build on the right side, probe with the left, materializing row-id
	// pair vectors (the operator's intermediate result).
	table := map[string][]int32{}
	for i := 0; i < right.n; i++ {
		table[rowKey(rk, i)] = append(table[rowKey(rk, i)], int32(i))
	}
	var selL, selR []int32
	for i := 0; i < left.n; i++ {
		for _, ri := range table[rowKey(lk, i)] {
			selL = append(selL, int32(i))
			selR = append(selR, ri)
		}
	}
	out := &chunk{cols: map[string]*Vector{}, n: len(selL)}
	for k, v := range left.cols {
		out.cols[k] = v.gather(selL)
	}
	for k, v := range right.cols {
		out.cols[k] = v.gather(selR)
	}
	if len(residual) > 0 {
		return e.filter(out, expr.Conjoin(residual))
	}
	return out, nil
}

func rowKey(keys []*Vector, i int) string {
	out := ""
	for _, k := range keys {
		out += k.value(i).String() + "\x00"
	}
	return out
}
