// The slow-query log (observability v2): a threshold-triggered structured
// record of every query whose end-to-end time met Config.SlowQueryThreshold.
// Entries are retained in a bounded ring for `/debug/slow` and the `.slow`
// REPL command, and optionally appended as JSON lines to a caller-supplied
// writer (the production tail -f surface).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// SlowQuery is one slow-log record. Durations are nanoseconds (the profile's
// native unit) with an end-to-end seconds mirror for human grep-ability.
type SlowQuery struct {
	Time         time.Time        `json:"time"`
	ID           int64            `json:"id"`
	Lang         string           `json:"lang"`
	Query        string           `json:"query"`
	Tag          string           `json:"tag,omitempty"`
	Fingerprint  string           `json:"fingerprint,omitempty"`
	TotalNanos   int64            `json:"total_nanos"`
	TotalSeconds float64          `json:"total_seconds"`
	PhaseNanos   map[string]int64 `json:"phase_nanos"`
	Workers      int              `json:"workers"`
	Morsels      int              `json:"morsels"`
	Rows         int64            `json:"rows"`
	Vectorized   bool             `json:"vectorized"`
	Err          string           `json:"err,omitempty"`
	// Misestimate is the worst estimated-vs-actual cardinality gap in the
	// operator tree (nil when no operator carried an estimate).
	Misestimate *Misestimate `json:"misestimate,omitempty"`
	// Attr is the query's resource attribution: bytes read, per-query cache
	// and index service, and the memory-accountant high-water mark.
	Attr QueryAttr `json:"attr"`
}

// newSlowQuery builds the record from a sealed profile.
func newSlowQuery(q *QueryProfile) *SlowQuery {
	phases := make(map[string]int64, len(q.Phases))
	for _, s := range q.Phases {
		phases[s.Name] = int64(s.Dur)
	}
	return &SlowQuery{
		Time:         q.Start,
		ID:           q.ID,
		Lang:         q.Lang,
		Query:        q.Query,
		Tag:          q.Tag,
		Fingerprint:  q.Fingerprint,
		TotalNanos:   int64(q.Total),
		TotalSeconds: q.Total.Seconds(),
		PhaseNanos:   phases,
		Workers:      q.Workers,
		Morsels:      q.Morsels,
		Rows:         q.Rows,
		Vectorized:   q.Vectorized,
		Err:          q.Err,
		Misestimate:  q.WorstMisestimate(),
		Attr:         q.Attr,
	}
}

// SlowLog retains the most recent slow queries and optionally streams them
// as JSON lines. All methods are concurrency-safe.
type SlowLog struct {
	threshold time.Duration

	mu   sync.Mutex
	buf  []*SlowQuery
	next int
	full bool
	w    io.Writer
	// logged counts every accepted record (including ones the ring has
	// since evicted); writeErrs counts failed sink writes.
	logged    int64
	writeErrs int64
}

// NewSlowLog returns a slow log recording queries at or above threshold,
// retaining up to capacity records (capacity < 1 keeps 1). A non-nil w
// additionally receives each record as one JSON line; writes happen under
// the log's lock, so the caller need not serialize.
func NewSlowLog(threshold time.Duration, capacity int, w io.Writer) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, buf: make([]*SlowQuery, capacity), w: w}
}

// Threshold reports the configured trigger duration.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Offer records the profile if it crossed the threshold, returning whether
// it did. A nil log accepts nothing.
func (l *SlowLog) Offer(q *QueryProfile) bool {
	if l == nil || q.Total < l.threshold {
		return false
	}
	rec := newSlowQuery(q)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = rec
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	l.logged++
	if l.w != nil {
		line, err := json.Marshal(rec)
		if err == nil {
			line = append(line, '\n')
			_, err = l.w.Write(line)
		}
		if err != nil {
			l.writeErrs++
		}
	}
	return true
}

// Snapshot returns the retained records, newest first. Nil-safe.
func (l *SlowLog) Snapshot() []*SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	out := make([]*SlowQuery, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[idx])
	}
	return out
}

// Logged reports the total number of accepted records. Nil-safe.
func (l *SlowLog) Logged() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.logged
}

// RenderSlowQuery formats one record as the `.slow` REPL block.
func RenderSlowQuery(s *SlowQuery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] query %d (%s): %s\n",
		s.Time.Format(time.RFC3339), s.ID, s.Lang, strings.TrimSpace(s.Query))
	if s.Tag != "" {
		fmt.Fprintf(&b, "  tag %s\n", s.Tag)
	}
	fmt.Fprintf(&b, "  total %v", time.Duration(s.TotalNanos).Round(time.Microsecond))
	for _, name := range Phases {
		if d, ok := s.PhaseNanos[name]; ok {
			fmt.Fprintf(&b, "  %s %v", name, time.Duration(d).Round(time.Microsecond))
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  rows=%d workers=%d vectorized=%v plan=%s\n",
		s.Rows, s.Workers, s.Vectorized, s.Fingerprint)
	a := s.Attr
	fmt.Fprintf(&b, "  bytes_read=%d cache_hits=%d zone_skips=%d bitmap_hits=%d mem_peak=%d\n",
		a.BytesRead, a.CacheHits, a.ZoneSkips, a.BitmapHits, a.MemPeakBytes)
	if m := s.Misestimate; m != nil {
		fmt.Fprintf(&b, "  worst misestimate: %s est=%.0f actual=%d (%.1fx)\n",
			m.Op, m.EstRows, m.Rows, m.Factor)
	}
	if s.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", s.Err)
	}
	return b.String()
}
