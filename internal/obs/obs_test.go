package obs

import (
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestRingEvictsOldestNewestFirst(t *testing.T) {
	r := NewRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Add(&QueryProfile{ID: i})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []int64{5, 4, 3}
	for i, p := range got {
		if p.ID != want[i] {
			t.Errorf("snapshot[%d].ID = %d, want %d", i, p.ID, want[i])
		}
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(4)
	r.Add(&QueryProfile{ID: 1})
	r.Add(&QueryProfile{ID: 2})
	got := r.Snapshot()
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 1 {
		t.Errorf("snapshot = %v", got)
	}
}

func TestQueryProfilePhaseLookup(t *testing.T) {
	q := &QueryProfile{Phases: []Span{
		{Name: PhaseParse, Dur: 2 * time.Microsecond},
		{Name: PhaseExecute, Dur: 5 * time.Millisecond},
	}}
	if q.Phase(PhaseExecute) != 5*time.Millisecond {
		t.Errorf("execute = %v", q.Phase(PhaseExecute))
	}
	if q.Phase(PhaseCompile) != 0 {
		t.Errorf("absent phase must report 0, got %v", q.Phase(PhaseCompile))
	}
}

func TestOpProfileEachAndExtra(t *testing.T) {
	root := &OpProfile{Op: "Reduce", Children: []*OpProfile{
		{Op: "Scan a", Extra: []Counter{{Name: "bytes_read", Value: 10}}},
		{Op: "Scan b", Extra: []Counter{{Name: "bytes_read", Value: 32}}},
	}}
	var total int64
	root.Each(func(op *OpProfile) { total += op.ExtraValue("bytes_read") })
	if total != 42 {
		t.Errorf("bytes total = %d, want 42", total)
	}
	if root.ExtraValue("missing") != 0 {
		t.Error("absent counter must report 0")
	}
}

// metricNameRe is the text-format metric name grammar.
var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// baseFamily strips the histogram sample suffixes so _bucket/_sum/_count
// samples resolve to their family's TYPE declaration.
func baseFamily(name string, histograms map[string]bool) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok && histograms[base] {
			return base
		}
	}
	return name
}

// TestPrometheusExpositionGrammar validates the full /metrics output against
// the text exposition format: metric name charset, exactly one TYPE line per
// family (histogram samples resolve through their suffixes), and parseable
// sample lines.
func TestPrometheusExpositionGrammar(t *testing.T) {
	var m Metrics
	m.Queries.Add(7)
	m.AddPhase(PhaseExecute, int64(1500*time.Millisecond))
	m.TotalLatency.Observe(3 * time.Millisecond)
	m.PhaseLatency[PhaseIndex(PhaseExecute)].Observe(2 * time.Millisecond)
	out := m.Snapshot(CacheCounters{Hits: 3, Misses: 1}).Prometheus()
	for _, want := range []string{
		"proteus_queries_total 7",
		`proteus_phase_seconds_total{phase="execute"} 1.5`,
		"proteus_cache_hits_total 3",
		"proteus_cache_misses_total 1",
		"# TYPE proteus_query_duration_seconds histogram",
		`proteus_query_duration_seconds_bucket{phase="total",le="+Inf"} 1`,
		`proteus_query_duration_seconds_sum{phase="total"}`,
		`proteus_query_duration_seconds_count{phase="total"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	typed := map[string]bool{}     // family → TYPE seen
	histogram := map[string]bool{} // family → declared histogram
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			name, kind := f[2], f[3]
			if typed[name] {
				t.Errorf("duplicate TYPE line for %q", name)
			}
			typed[name] = true
			if kind == "histogram" {
				histogram[name] = true
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if j := strings.IndexByte(line, '}'); j < i {
				t.Errorf("malformed label braces in %q", line)
			}
			name = name[:i]
		} else if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed line %q", line)
			continue
		} else {
			name = parts[0]
		}
		if !metricNameRe.MatchString(name) {
			t.Errorf("metric name %q violates the name grammar", name)
		}
		if !typed[baseFamily(name, histogram)] {
			t.Errorf("metric %q has no preceding TYPE", name)
		}
	}
}

// TestPrometheusEscaping checks HELP and label-value escaping per the text
// exposition format.
func TestPrometheusEscaping(t *testing.T) {
	if got := escapeHelp(`back\slash` + "\nnewline"); got != `back\\slash\nnewline` {
		t.Errorf("escapeHelp = %q", got)
	}
	if got := escapeLabel(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestRenderProfileTimedTree(t *testing.T) {
	q := &QueryProfile{
		Lang:    "sql",
		Query:   "SELECT 1",
		Total:   3 * time.Millisecond,
		Workers: 2,
		Morsels: 2,
		Timed:   true,
		Phases: []Span{{Name: PhaseExecute, Dur: time.Millisecond, Children: []Span{
			{Name: "worker 0 (rows 0..5)", Dur: time.Millisecond},
		}}},
		Root: &OpProfile{Op: "Reduce count", Rows: 1, SelfNanos: 1000, Children: []*OpProfile{
			{Op: "Scan t as x", Rows: 10, EstRows: 12, Batches: 2,
				Extra: []Counter{{Name: "bytes_read", Value: 99}, {Name: "cache_build_nanos", Value: 2000}}},
		}},
	}
	out := RenderProfile(q)
	for _, want := range []string{
		"(2 workers, 2 morsels)",
		"worker 0 (rows 0..5)",
		"Reduce count  (rows=1 time=1µs)",
		"Scan t as x  (rows=10 est=12 batches=2",
		"bytes_read=99",
		"cache_build=2µs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
