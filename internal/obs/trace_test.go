package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// traceFixture is a parallel query's profile: two workers under the execute
// phase, one with sampled morsel events, plus an error instant.
func traceFixture() *QueryProfile {
	start := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return &QueryProfile{
		ID:      7,
		Lang:    "sql",
		Query:   "SELECT COUNT(*) FROM t",
		Start:   start,
		Total:   10 * time.Millisecond,
		Workers: 2,
		Morsels: 4,
		Rows:    1,
		Phases: []Span{
			{Name: PhaseParse, Start: start, Dur: time.Millisecond},
			{Name: PhaseExecute, Start: start.Add(2 * time.Millisecond), Dur: 8 * time.Millisecond,
				Children: []Span{
					{Name: "worker 0 (rows 0..9)", Start: start.Add(2 * time.Millisecond), Dur: 7 * time.Millisecond,
						Children: []Span{
							{Name: "morsel t", Start: start.Add(3 * time.Millisecond), Dur: 2 * time.Millisecond},
						}},
					{Name: "worker 1 (rows 10..19)", Start: start.Add(2 * time.Millisecond), Dur: 6 * time.Millisecond},
				}},
		},
	}
}

func TestTraceEventsShape(t *testing.T) {
	evs := TraceEvents(traceFixture())
	byName := map[string]TraceEvent{}
	counts := map[string]int{}
	for _, e := range evs {
		byName[e.Name] = e
		counts[e.Ph]++
		if e.Pid != 7 {
			t.Errorf("event %q pid = %d, want 7 (the query ID)", e.Name, e.Pid)
		}
		if e.Ph == "X" && e.Ts < 0 {
			t.Errorf("event %q ts = %g, want >= 0", e.Name, e.Ts)
		}
	}
	if counts["M"] < 4 {
		t.Errorf("got %d metadata events, want >= 4 (process + 3 thread names)", counts["M"])
	}

	q := byName["query"]
	if q.Ph != "X" || q.Ts != 0 || q.Dur != 10000 || q.Tid != 0 {
		t.Errorf("query event = %+v, want X at ts=0 dur=10000 tid=0", q)
	}
	if q.Args["workers"] != 2 || q.Args["rows"] != int64(1) {
		t.Errorf("query args = %v", q.Args)
	}

	exec := byName[PhaseExecute]
	if exec.Ts != 2000 || exec.Dur != 8000 || exec.Tid != 0 || exec.Cat != "phase" {
		t.Errorf("execute phase event = %+v", exec)
	}
	w0 := byName["worker 0 (rows 0..9)"]
	w1 := byName["worker 1 (rows 10..19)"]
	if w0.Tid != 1 || w1.Tid != 2 {
		t.Errorf("worker tids = %d, %d, want 1, 2", w0.Tid, w1.Tid)
	}
	m := byName["morsel t"]
	if m.Tid != w0.Tid || m.Cat != "morsel" || m.Ts != 3000 || m.Dur != 2000 {
		t.Errorf("morsel event = %+v, want on tid %d at ts=3000 dur=2000", m, w0.Tid)
	}
}

func TestTraceEventsError(t *testing.T) {
	qp := traceFixture()
	qp.Err = "boom"
	evs := TraceEvents(qp)
	last := evs[len(evs)-1]
	if last.Ph != "i" || last.Cat != "error" || last.Name != "error: boom" {
		t.Errorf("error instant = %+v", last)
	}
}

// TestTraceJSONRoundTrip checks the export is the JSON *array* form with the
// required per-event keys — the contract Perfetto/chrome://tracing loads.
func TestTraceJSONRoundTrip(t *testing.T) {
	data, err := TraceJSON(traceFixture())
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != '[' {
		t.Fatalf("trace JSON must be the array form, got %q...", data[:1])
	}
	var raw []map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	sawCompleteWithDur := false
	for i, e := range raw {
		for _, key := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Errorf("event %d missing required key %q: %v", i, key, e)
			}
		}
		if e["ph"] == "X" {
			if d, ok := e["dur"].(float64); ok && d > 0 {
				sawCompleteWithDur = true
			}
		}
	}
	if !sawCompleteWithDur {
		t.Error("no complete (X) event carried a positive dur")
	}
}
