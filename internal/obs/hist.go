// Log-bucketed latency histograms (observability v2).
//
// The bucket boundaries are fixed at compile time — powers of two in
// microseconds, 1µs .. 2^26µs (~67s), plus a +Inf overflow bucket — so two
// histograms merge by plain addition and recording is a single atomic add on
// a precomputed index: no locks, no allocation, HDR-style constant relative
// error (≤2x per bucket). Fixed boundaries also make the Prometheus
// histogram exposition (`*_bucket{le=...}`) trivially cumulative.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of histogram buckets, including the +Inf
// overflow bucket. Bucket i (i < HistBuckets-1) counts observations with
// duration ≤ 2^i microseconds.
const HistBuckets = 28

// BucketBound returns bucket i's inclusive upper bound in seconds
// (+Inf for the overflow bucket).
func BucketBound(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) / 1e6
}

// bucketOf maps a duration to its bucket: the smallest i with
// d ≤ 2^i microseconds, clamped to the overflow bucket.
func bucketOf(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	us := uint64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	b := bits.Len64(us - 1)
	if b > HistBuckets-1 {
		return HistBuckets - 1
	}
	return b
}

// Histogram is a concurrency-safe log-bucketed latency histogram. The zero
// value is ready to use.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration: two atomic adds plus one on the bucket.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Merge folds another histogram's counts into this one. Both may be
// observed concurrently; the merge is per-bucket atomic (each bucket is
// transferred exactly, though the aggregate is not a point-in-time cut).
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
}

// Snapshot copies the histogram's state for rendering.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumSeconds = float64(h.sum.Load()) / 1e9
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Buckets    [HistBuckets]int64
	Count      int64
	SumSeconds float64
}

// Quantile estimates the q-quantile (0 < q ≤ 1) in seconds: the upper
// boundary of the bucket containing the q·count-th observation, i.e. an
// over-estimate by at most 2x. Returns 0 for an empty histogram;
// observations in the overflow bucket report the last finite boundary.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Buckets[i]
		if cum >= rank {
			if i == HistBuckets-1 {
				return BucketBound(HistBuckets - 2)
			}
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 2)
}
