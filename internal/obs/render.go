package obs

import (
	"fmt"
	"strings"
	"time"
)

// RenderProfile renders a query profile as the EXPLAIN ANALYZE text block:
// a phase-timing header followed by the operator tree annotated with
// estimated vs. actual cardinalities and (on timed runs) per-operator self
// time.
func RenderProfile(q *QueryProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query (%s): %s\n", q.Lang, strings.TrimSpace(q.Query))
	fmt.Fprintf(&b, "Total: %v", q.Total.Round(time.Microsecond))
	if q.Workers > 1 {
		fmt.Fprintf(&b, "  (%d workers, %d morsels)", q.Workers, q.Morsels)
	}
	b.WriteString("\n")
	for _, s := range q.Phases {
		fmt.Fprintf(&b, "  %-8s %v\n", s.Name+":", s.Dur.Round(time.Microsecond))
		for _, c := range s.Children {
			fmt.Fprintf(&b, "    %-20s %v\n", c.Name, c.Dur.Round(time.Microsecond))
		}
	}
	if q.Err != "" {
		fmt.Fprintf(&b, "Error: %s\n", q.Err)
	}
	if q.Root != nil {
		b.WriteString("Plan:\n")
		renderOp(&b, q.Root, 1, q.Timed)
	}
	return b.String()
}

func renderOp(b *strings.Builder, op *OpProfile, depth int, timed bool) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(op.Op)
	fmt.Fprintf(b, "  (rows=%d", op.Rows)
	if op.EstRows > 0 {
		fmt.Fprintf(b, " est=%.0f", op.EstRows)
	}
	if op.Batches > 0 {
		fmt.Fprintf(b, " batches=%d", op.Batches)
	}
	if timed {
		fmt.Fprintf(b, " time=%v", time.Duration(op.SelfNanos).Round(time.Microsecond))
	}
	b.WriteString(")")
	for _, c := range sortCounters(op.Extra) {
		switch {
		case strings.HasSuffix(c.Name, "_nanos"):
			fmt.Fprintf(b, " %s=%v", strings.TrimSuffix(c.Name, "_nanos"),
				time.Duration(c.Value).Round(time.Microsecond))
		default:
			fmt.Fprintf(b, " %s=%d", c.Name, c.Value)
		}
	}
	b.WriteString("\n")
	for _, c := range op.Children {
		renderOp(b, c, depth+1, timed)
	}
}
