package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},               // ≤ 2^0 µs
		{2 * time.Microsecond, 1},           // ≤ 2^1 µs
		{3 * time.Microsecond, 2},           // 3 > 2, ≤ 4
		{1024 * time.Microsecond, 10},       // exactly 2^10 µs
		{1025 * time.Microsecond, 11},       // just past a boundary
		{time.Hour, HistBuckets - 1},        // overflow
		{-time.Second, 0},                   // clamped
		{67 * time.Second, HistBuckets - 2}, // just inside the last finite bound (2^26µs ≈ 67.1s)
		{68 * time.Second, HistBuckets - 1}, // past it → overflow
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if !math.IsInf(BucketBound(HistBuckets-1), 1) {
		t.Error("overflow bucket bound must be +Inf")
	}
	if got := BucketBound(10); got != 1024e-6 {
		t.Errorf("BucketBound(10) = %g, want 1024µs in seconds", got)
	}
}

// TestHistogramConcurrentObserveAndMerge races many observers against a
// merging reader; run under -race in CI. Totals must balance exactly once
// everything quiets down.
func TestHistogramConcurrentObserveAndMerge(t *testing.T) {
	var parts [4]Histogram
	const perPart = 500
	var wg sync.WaitGroup
	for p := range parts {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(p, g int) {
				defer wg.Done()
				for i := 0; i < perPart/4; i++ {
					parts[p].Observe(time.Duration(g*i+1) * time.Microsecond)
				}
			}(p, g)
		}
	}
	wg.Wait()
	var merged Histogram
	for p := range parts {
		merged.Merge(&parts[p])
	}
	s := merged.Snapshot()
	if want := int64(len(parts) * perPart); s.Count != want {
		t.Fatalf("merged count = %d, want %d", s.Count, want)
	}
	var bucketTotal int64
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
	if s.SumSeconds <= 0 {
		t.Errorf("sum = %g, want > 0", s.SumSeconds)
	}
}

func TestQuantileUpperBound(t *testing.T) {
	var h Histogram
	// 90 fast (≤ 1µs) + 10 slow (~1ms) observations: p50 must be in the
	// fast bucket, p99 in the ~1ms bucket.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != BucketBound(0) {
		t.Errorf("p50 = %g, want %g", got, BucketBound(0))
	}
	p99 := s.Quantile(0.99)
	if p99 < 1e-3 || p99 > 2e-3 {
		t.Errorf("p99 = %g, want within [1ms, 2ms] (≤2x bucket error)", p99)
	}
	if (HistSnapshot{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}
