package obs

import (
	"fmt"
	"math"
	"testing"
	"time"
)

func TestFeedbackWelfordAndModeSplit(t *testing.T) {
	f := NewPlanFeedback(8)
	// Three tuple runs at 10/20/30ms, one vectorized at 40ms.
	for i, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		f.Observe("fp1", "SELECT 1", d, int64(100*(i+1)), false, false)
	}
	f.Observe("fp1", "SELECT 1", 40*time.Millisecond, 400, true, false)

	st, ok := f.Lookup("fp1")
	if !ok {
		t.Fatal("fp1 untracked")
	}
	if st.Executions != 4 || st.Rows != 1000 || st.Query != "SELECT 1" {
		t.Errorf("stats = %+v", st)
	}
	if got, want := st.MeanNanos, float64(25*time.Millisecond); math.Abs(got-want) > 1 {
		t.Errorf("mean = %g, want %g", got, want)
	}
	// Sample stddev of {10,20,30,40}ms is ~12.91ms.
	if got := st.StddevNanos / 1e6; math.Abs(got-12.909944) > 1e-3 {
		t.Errorf("stddev = %gms, want ~12.91ms", got)
	}
	if st.Tuple.Runs != 3 || st.Tuple.Rows != 600 {
		t.Errorf("tuple mode = %+v", st.Tuple)
	}
	if st.Vectorized.Runs != 1 || st.Vectorized.Rows != 400 {
		t.Errorf("vectorized mode = %+v", st.Vectorized)
	}
	if got, want := st.Vectorized.RowsPerSec(), 400/0.04; math.Abs(got-want) > 1e-6 {
		t.Errorf("vectorized rows/sec = %g, want %g", got, want)
	}
}

func TestFeedbackErrorsAndNilSafety(t *testing.T) {
	f := NewPlanFeedback(8)
	f.Observe("fp", "q", time.Millisecond, 0, false, true)
	f.Observe("", "no fingerprint", time.Millisecond, 0, false, false)
	if st, _ := f.Lookup("fp"); st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
	if f.Len() != 1 {
		t.Errorf("len = %d, want 1 (empty fingerprint ignored)", f.Len())
	}
	var nilStore *PlanFeedback
	nilStore.Observe("fp", "q", time.Millisecond, 1, false, false)
	nilStore.ObserveProfile(&QueryProfile{Fingerprint: "fp"})
	if nilStore.Snapshot() != nil || nilStore.Len() != 0 {
		t.Error("nil store must track nothing")
	}
	if _, ok := nilStore.Lookup("fp"); ok {
		t.Error("nil store lookup must miss")
	}
}

func TestFeedbackLRUEviction(t *testing.T) {
	f := NewPlanFeedback(3)
	for i := 0; i < 3; i++ {
		f.Observe(fmt.Sprintf("fp%d", i), "q", time.Millisecond, 1, false, false)
	}
	// Touch fp0 so fp1 becomes the LRU, then overflow.
	f.Observe("fp0", "q", time.Millisecond, 1, false, false)
	f.Observe("fp3", "q", time.Millisecond, 1, false, false)
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3", f.Len())
	}
	if _, ok := f.Lookup("fp1"); ok {
		t.Error("fp1 (the LRU) must have been evicted")
	}
	for _, fp := range []string{"fp0", "fp2", "fp3"} {
		if _, ok := f.Lookup(fp); !ok {
			t.Errorf("%s must have survived", fp)
		}
	}
}

func TestFeedbackObserveProfilePhases(t *testing.T) {
	f := NewPlanFeedback(8)
	qp := &QueryProfile{
		Fingerprint: "fp",
		Query:       "SELECT 1",
		Total:       10 * time.Millisecond,
		Rows:        5,
		Vectorized:  true,
		Phases: []Span{
			{Name: PhaseParse, Dur: time.Millisecond},
			{Name: PhaseExecute, Dur: 8 * time.Millisecond},
			{Name: "not-a-phase", Dur: time.Hour},
		},
	}
	f.ObserveProfile(qp)
	f.ObserveProfile(qp)
	st, _ := f.Lookup("fp")
	if st.Executions != 2 || st.Vectorized.Runs != 2 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.PhaseMeanNanos[PhaseIndex(PhaseExecute)]; got != float64(8*time.Millisecond) {
		t.Errorf("execute phase mean = %g", got)
	}
	if got := st.PhaseMeanNanos[PhaseIndex(PhaseCompile)]; got != 0 {
		t.Errorf("unobserved phase mean = %g, want 0", got)
	}
}

func TestFeedbackSnapshotOrder(t *testing.T) {
	f := NewPlanFeedback(8)
	f.Observe("rare", "q", time.Millisecond, 1, false, false)
	for i := 0; i < 3; i++ {
		f.Observe("hot", "q", time.Millisecond, 1, false, false)
	}
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Fingerprint != "hot" || snap[1].Fingerprint != "rare" {
		t.Errorf("snapshot order = %v", snap)
	}
}
