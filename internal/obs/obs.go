// Package obs is the engine's observability layer: per-query phase spans,
// per-operator execution profiles, cumulative engine metrics, and their
// HTTP/text surfacings. The package is dependency-free within the module so
// every layer (exec, engine, plugins via plain structs) can feed it without
// import cycles.
//
// Design (see DESIGN.md "Observability"):
//
//   - A query records one QueryProfile: a span per life-cycle phase
//     (parse → calculus → optimize → compile → execute), per-worker child
//     spans under execute, and an operator tree of actual row counts vs.
//     optimizer estimates.
//   - Counters on the hot path are worker-private and non-atomic; shared
//     (atomic) state is touched once per morsel or per run, never per tuple.
//   - Wall-clock per-operator timing is reserved for EXPLAIN ANALYZE runs;
//     plain profiled queries only pay row/batch counters.
package obs

import (
	"sync"
	"time"
)

// Phase names of the query life-cycle, in order.
const (
	PhaseParse    = "parse"
	PhaseCalculus = "calculus"
	PhaseOptimize = "optimize"
	PhaseCompile  = "compile"
	PhaseExecute  = "execute"
)

// Phases lists the life-cycle phase names in execution order.
var Phases = []string{PhaseParse, PhaseCalculus, PhaseOptimize, PhaseCompile, PhaseExecute}

// PhaseIndex returns a phase name's position in Phases (-1 when unknown).
func PhaseIndex(name string) int {
	for i, p := range Phases {
		if p == name {
			return i
		}
	}
	return -1
}

// Span is one timed region of a query's life-cycle. Start is wall-clock for
// display; Dur is measured monotonically.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur"`
	Children []Span        `json:"children,omitempty"`
}

// Counter is one named extra metric attached to an operator (scan plug-in
// byte counts, cache-build time, …).
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// OpProfile is one physical operator's execution profile, aggregated over
// all workers of the run.
type OpProfile struct {
	// Op is the operator label, e.g. "Scan lineitem as l".
	Op string `json:"op"`
	// EstRows is the optimizer's cardinality estimate (0 when unknown).
	EstRows float64 `json:"est_rows"`
	// Rows is the number of tuples the operator emitted.
	Rows int64 `json:"rows"`
	// Batches is the number of driver invocations (morsels) for scans.
	Batches int64 `json:"batches,omitempty"`
	// SelfNanos is wall time attributed to this operator alone. Only
	// populated on EXPLAIN ANALYZE (timed) runs.
	SelfNanos int64 `json:"self_nanos,omitempty"`
	// Extra carries plug-in counters: bytes_read, fields_parsed,
	// index_hits, cache_build_nanos.
	Extra    []Counter    `json:"extra,omitempty"`
	Children []*OpProfile `json:"children,omitempty"`
}

// Each calls fn for the profile and every descendant.
func (p *OpProfile) Each(fn func(*OpProfile)) {
	if p == nil {
		return
	}
	fn(p)
	for _, c := range p.Children {
		c.Each(fn)
	}
}

// ExtraValue returns the named extra counter (0 when absent).
func (p *OpProfile) ExtraValue(name string) int64 {
	for _, c := range p.Extra {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// QueryAttr is one query's resource attribution: what this execution — as
// opposed to the engine's cumulative counters — read, skipped, and pinned.
// Scan counters aggregate the operator tree; cache counters are scoped to
// the run (compile-time block hits, run-time zone skips and bitmap hits);
// MemPeakBytes is the memory accountant's high-water mark (0 when no
// budget was configured).
type QueryAttr struct {
	BytesRead     int64 `json:"bytes_read"`
	FieldsParsed  int64 `json:"fields_parsed"`
	ScanIndexHits int64 `json:"scan_index_hits"`
	CacheHits     int64 `json:"cache_hits"`
	ZoneSkips     int64 `json:"zone_skips"`
	BitmapHits    int64 `json:"bitmap_hits"`
	MemPeakBytes  int64 `json:"mem_peak_bytes"`
}

// Misestimate is one operator's estimated-vs-actual cardinality gap.
type Misestimate struct {
	Op      string  `json:"op"`
	EstRows float64 `json:"est_rows"`
	Rows    int64   `json:"rows"`
	// Factor is the symmetric error ratio, ≥ 1 (2 = off by 2x either way).
	Factor float64 `json:"factor"`
}

// QueryProfile is the complete observability record of one query execution.
type QueryProfile struct {
	ID    int64     `json:"id"`
	Lang  string    `json:"lang"` // "sql", "comp", or "plan"
	Query string    `json:"query"`
	Start time.Time `json:"start"`
	// Total is end-to-end wall time (parse through execute).
	Total time.Duration `json:"total"`
	// Phases holds one span per life-cycle phase; the execute span carries
	// per-worker child spans under morsel parallelism.
	Phases []Span `json:"phases"`
	// Workers and Morsels describe the parallel shape (1/1 for serial).
	Workers int `json:"workers"`
	Morsels int `json:"morsels"`
	// Fragments is the number of remote worker partials gathered when the
	// query ran distributed (0 for local execution).
	Fragments int `json:"fragments,omitempty"`
	// Rows is the result cardinality; Err the failure, if any.
	Rows int64  `json:"rows"`
	Err  string `json:"err,omitempty"`
	// Root is the operator profile tree (nil when compilation failed).
	Root *OpProfile `json:"root,omitempty"`
	// Timed reports whether per-operator wall timing was on (EXPLAIN
	// ANALYZE); untimed profiles carry counters only.
	Timed bool `json:"timed"`
	// Fingerprint is the compiled plan's structural fingerprint — the
	// feedback-store key (empty when compilation failed).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Vectorized reports whether any pipeline segment ran batch kernels.
	Vectorized bool `json:"vectorized,omitempty"`
	// Tag is the caller-supplied correlation key (the query service puts
	// its request ID here), carried into the slow-query log so one request
	// can be traced from access log to profile to slow record.
	Tag string `json:"tag,omitempty"`
	// Attr is this query's resource attribution (observability v2).
	Attr QueryAttr `json:"attr"`
}

// WorstMisestimate returns the operator whose optimizer estimate is
// furthest from its actual cardinality (symmetric ratio, both sides
// clamped to ≥1 so empty results don't divide by zero), or nil when no
// operator carries an estimate.
func (q *QueryProfile) WorstMisestimate() *Misestimate {
	var worst *Misestimate
	q.Root.Each(func(op *OpProfile) {
		if op.EstRows <= 0 {
			return
		}
		est, act := op.EstRows, float64(op.Rows)
		if est < 1 {
			est = 1
		}
		if act < 1 {
			act = 1
		}
		factor := act / est
		if factor < 1 {
			factor = 1 / factor
		}
		if worst == nil || factor > worst.Factor {
			worst = &Misestimate{Op: op.Op, EstRows: op.EstRows, Rows: op.Rows, Factor: factor}
		}
	})
	return worst
}

// Phase returns the duration of the named phase span (0 when absent).
func (q *QueryProfile) Phase(name string) time.Duration {
	for _, s := range q.Phases {
		if s.Name == name {
			return s.Dur
		}
	}
	return 0
}

// Ring is a bounded, concurrency-safe buffer of the most recent query
// profiles.
type Ring struct {
	mu   sync.Mutex
	buf  []*QueryProfile
	next int
	full bool
}

// NewRing returns a ring retaining up to n profiles (n < 1 keeps 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*QueryProfile, n)}
}

// Add records a profile, evicting the oldest when full.
func (r *Ring) Add(p *QueryProfile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = p
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Snapshot returns the retained profiles, newest first.
func (r *Ring) Snapshot() []*QueryProfile {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*QueryProfile, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Len reports the number of retained profiles.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
