// Package obs is the engine's observability layer: per-query phase spans,
// per-operator execution profiles, cumulative engine metrics, and their
// HTTP/text surfacings. The package is dependency-free within the module so
// every layer (exec, engine, plugins via plain structs) can feed it without
// import cycles.
//
// Design (see DESIGN.md "Observability"):
//
//   - A query records one QueryProfile: a span per life-cycle phase
//     (parse → calculus → optimize → compile → execute), per-worker child
//     spans under execute, and an operator tree of actual row counts vs.
//     optimizer estimates.
//   - Counters on the hot path are worker-private and non-atomic; shared
//     (atomic) state is touched once per morsel or per run, never per tuple.
//   - Wall-clock per-operator timing is reserved for EXPLAIN ANALYZE runs;
//     plain profiled queries only pay row/batch counters.
package obs

import (
	"sync"
	"time"
)

// Phase names of the query life-cycle, in order.
const (
	PhaseParse    = "parse"
	PhaseCalculus = "calculus"
	PhaseOptimize = "optimize"
	PhaseCompile  = "compile"
	PhaseExecute  = "execute"
)

// Phases lists the life-cycle phase names in execution order.
var Phases = []string{PhaseParse, PhaseCalculus, PhaseOptimize, PhaseCompile, PhaseExecute}

// Span is one timed region of a query's life-cycle. Start is wall-clock for
// display; Dur is measured monotonically.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Dur      time.Duration `json:"dur"`
	Children []Span        `json:"children,omitempty"`
}

// Counter is one named extra metric attached to an operator (scan plug-in
// byte counts, cache-build time, …).
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// OpProfile is one physical operator's execution profile, aggregated over
// all workers of the run.
type OpProfile struct {
	// Op is the operator label, e.g. "Scan lineitem as l".
	Op string `json:"op"`
	// EstRows is the optimizer's cardinality estimate (0 when unknown).
	EstRows float64 `json:"est_rows"`
	// Rows is the number of tuples the operator emitted.
	Rows int64 `json:"rows"`
	// Batches is the number of driver invocations (morsels) for scans.
	Batches int64 `json:"batches,omitempty"`
	// SelfNanos is wall time attributed to this operator alone. Only
	// populated on EXPLAIN ANALYZE (timed) runs.
	SelfNanos int64 `json:"self_nanos,omitempty"`
	// Extra carries plug-in counters: bytes_read, fields_parsed,
	// index_hits, cache_build_nanos.
	Extra    []Counter    `json:"extra,omitempty"`
	Children []*OpProfile `json:"children,omitempty"`
}

// Each calls fn for the profile and every descendant.
func (p *OpProfile) Each(fn func(*OpProfile)) {
	if p == nil {
		return
	}
	fn(p)
	for _, c := range p.Children {
		c.Each(fn)
	}
}

// ExtraValue returns the named extra counter (0 when absent).
func (p *OpProfile) ExtraValue(name string) int64 {
	for _, c := range p.Extra {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// QueryProfile is the complete observability record of one query execution.
type QueryProfile struct {
	ID    int64     `json:"id"`
	Lang  string    `json:"lang"` // "sql", "comp", or "plan"
	Query string    `json:"query"`
	Start time.Time `json:"start"`
	// Total is end-to-end wall time (parse through execute).
	Total time.Duration `json:"total"`
	// Phases holds one span per life-cycle phase; the execute span carries
	// per-worker child spans under morsel parallelism.
	Phases []Span `json:"phases"`
	// Workers and Morsels describe the parallel shape (1/1 for serial).
	Workers int `json:"workers"`
	Morsels int `json:"morsels"`
	// Rows is the result cardinality; Err the failure, if any.
	Rows int64  `json:"rows"`
	Err  string `json:"err,omitempty"`
	// Root is the operator profile tree (nil when compilation failed).
	Root *OpProfile `json:"root,omitempty"`
	// Timed reports whether per-operator wall timing was on (EXPLAIN
	// ANALYZE); untimed profiles carry counters only.
	Timed bool `json:"timed"`
}

// Phase returns the duration of the named phase span (0 when absent).
func (q *QueryProfile) Phase(name string) time.Duration {
	for _, s := range q.Phases {
		if s.Name == name {
			return s.Dur
		}
	}
	return 0
}

// Ring is a bounded, concurrency-safe buffer of the most recent query
// profiles.
type Ring struct {
	mu   sync.Mutex
	buf  []*QueryProfile
	next int
	full bool
}

// NewRing returns a ring retaining up to n profiles (n < 1 keeps 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*QueryProfile, n)}
}

// Add records a profile, evicting the oldest when full.
func (r *Ring) Add(p *QueryProfile) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = p
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Snapshot returns the retained profiles, newest first.
func (r *Ring) Snapshot() []*QueryProfile {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]*QueryProfile, 0, n)
	for i := 0; i < n; i++ {
		idx := (r.next - 1 - i + len(r.buf)) % len(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// Len reports the number of retained profiles.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
