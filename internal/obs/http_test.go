package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testHandler builds a Handler over the given stores; any of profiles,
// slow, plans may be nil — the nil-safe paths are exactly what these tests
// exercise.
func testHandler(profiles *Ring, slow *SlowLog, plans *PlanFeedback) http.Handler {
	var m Metrics
	return Handler(func() Snapshot { return m.Snapshot(CacheCounters{}) }, profiles, slow, plans)
}

// get issues one request and returns the recorder.
func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// wantJSON asserts the response is a JSON document with the given status
// and decodes it into out (pass nil to only check well-formedness).
func wantJSON(t *testing.T, w *httptest.ResponseRecorder, status int, out any) {
	t.Helper()
	if w.Code != status {
		t.Fatalf("status = %d, want %d (body %q)", w.Code, status, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Content-Type = %q, want JSON", ct)
	}
	if out == nil {
		out = new(any)
	}
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("body is not valid JSON: %v\n%s", err, w.Body.String())
	}
}

// TestHandlerNilStores hits every endpoint with nil Ring, SlowLog, and
// PlanFeedback: each must answer with valid JSON (or Prometheus text), not
// panic on the nil-safe snapshot paths.
func TestHandlerNilStores(t *testing.T) {
	h := testHandler(nil, nil, nil)

	if w := get(t, h, "/metrics"); w.Code != http.StatusOK ||
		!strings.Contains(w.Body.String(), "proteus_queries_total") {
		t.Fatalf("/metrics: status %d body %q", w.Code, w.Body.String())
	}
	wantJSON(t, get(t, h, "/debug/vars"), http.StatusOK, nil)
	wantJSON(t, get(t, h, "/debug/queries"), http.StatusOK, nil)
	wantJSON(t, get(t, h, "/debug/slow"), http.StatusOK, nil)
	wantJSON(t, get(t, h, "/debug/plans"), http.StatusOK, nil)
}

// TestHandlerTraceErrors pins the /debug/trace error contract: malformed id
// → 400 with a JSON error body; unknown or absent profile → 404 with a JSON
// error body (not 200, not an empty document).
func TestHandlerTraceErrors(t *testing.T) {
	h := testHandler(nil, nil, nil)

	var e struct {
		Error string `json:"error"`
	}
	wantJSON(t, get(t, h, "/debug/trace?id=banana"), http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "bad id") {
		t.Fatalf("400 error = %q, want mention of bad id", e.Error)
	}
	wantJSON(t, get(t, h, "/debug/trace"), http.StatusNotFound, &e)
	if e.Error == "" {
		t.Fatal("404 body carries no error message")
	}

	// A populated ring still 404s for an id it does not retain.
	ring := NewRing(4)
	ring.Add(&QueryProfile{ID: 7, Query: "SELECT 1", Start: time.Now(),
		Phases: []Span{{Name: PhaseExecute, Start: time.Now(), Dur: time.Millisecond}}})
	h = testHandler(ring, nil, nil)
	wantJSON(t, get(t, h, "/debug/trace?id=999"), http.StatusNotFound, &e)

	// ... and serves trace JSON for one it does.
	w := get(t, h, "/debug/trace?id=7")
	if w.Code != http.StatusOK {
		t.Fatalf("trace for retained profile: status %d body %q", w.Code, w.Body.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &events); err != nil || len(events) == 0 {
		t.Fatalf("trace body: err=%v events=%d", err, len(events))
	}
}

// TestHandlerPopulatedStores round-trips each JSON endpoint with real data
// so a profile's tag and a slow record survive the HTTP surface.
func TestHandlerPopulatedStores(t *testing.T) {
	ring := NewRing(4)
	ring.Add(&QueryProfile{ID: 1, Query: "SELECT 1", Tag: "req-42", Start: time.Now()})
	slow := NewSlowLog(time.Nanosecond, 4, nil)
	slow.Offer(&QueryProfile{ID: 2, Query: "SELECT 2", Tag: "req-43",
		Start: time.Now(), Total: time.Second})
	plans := NewPlanFeedback(4)
	h := testHandler(ring, slow, plans)

	var profiles []struct {
		Tag string `json:"tag"`
	}
	wantJSON(t, get(t, h, "/debug/queries"), http.StatusOK, &profiles)
	if len(profiles) != 1 || profiles[0].Tag != "req-42" {
		t.Fatalf("profiles = %+v, want one with tag req-42", profiles)
	}
	var slowRecs []struct {
		Tag string `json:"tag"`
	}
	wantJSON(t, get(t, h, "/debug/slow"), http.StatusOK, &slowRecs)
	if len(slowRecs) != 1 || slowRecs[0].Tag != "req-43" {
		t.Fatalf("slow = %+v, want one with tag req-43", slowRecs)
	}
}

// TestWriteJSONError pins the shared error-body shape.
func TestWriteJSONError(t *testing.T) {
	w := httptest.NewRecorder()
	WriteJSONError(w, http.StatusTeapot, `broken "quote"`)
	var e struct {
		Error string `json:"error"`
	}
	wantJSON(t, w, http.StatusTeapot, &e)
	if e.Error != `broken "quote"` {
		t.Fatalf("error = %q", e.Error)
	}
}
