// Chrome trace-event export (observability v2): a QueryProfile's span tree
// serialized in the trace-event JSON array format that Perfetto and
// chrome://tracing load directly. Life-cycle phases render on one timeline
// row ("lifecycle", tid 0); under morsel parallelism each worker's execute
// span — and, when morsel events were sampled, its per-scan-driver morsel
// slices — renders on its own row (tid 1+worker).
//
// Format reference: the "Trace Event Format" document (the JSON array form;
// every event carries ph/ts/pid/tid, durations are "X" complete events with
// ts+dur in microseconds).
package obs

import (
	"encoding/json"
	"strconv"
	"time"
)

// TraceEvent is one Chrome trace event (the subset this exporter emits).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since profile start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// micros converts a wall-clock offset into trace microseconds.
func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// TraceEvents flattens a profile into its trace events. The profile's Start
// is the trace's time zero; the query's ID is its pid, so multiple exported
// queries can be concatenated into one trace without colliding.
func TraceEvents(q *QueryProfile) []TraceEvent {
	pid := q.ID
	meta := func(name string, tid int64, value string) TraceEvent {
		return TraceEvent{Name: name, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": value}}
	}
	evs := []TraceEvent{
		meta("process_name", 0, "proteus query "+strconv.FormatInt(q.ID, 10)+" ("+q.Lang+")"),
		meta("thread_name", 0, "lifecycle"),
	}
	evs = append(evs, TraceEvent{
		Name: "query", Cat: "query", Ph: "X",
		Ts: 0, Dur: micros(q.Total), Pid: pid, Tid: 0,
		Args: map[string]any{
			"query": q.Query, "rows": q.Rows,
			"workers": q.Workers, "morsels": q.Morsels,
		},
	})
	namedThreads := map[int64]bool{}
	for _, ph := range q.Phases {
		evs = append(evs, TraceEvent{
			Name: ph.Name, Cat: "phase", Ph: "X",
			Ts: micros(ph.Start.Sub(q.Start)), Dur: micros(ph.Dur),
			Pid: pid, Tid: 0,
		})
		// The execute phase's children are per-worker spans; their own
		// children are sampled per-morsel scan-driver slices. Both render on
		// the worker's thread row.
		for wi, ws := range ph.Children {
			tid := int64(wi + 1)
			if !namedThreads[tid] {
				namedThreads[tid] = true
				evs = append(evs, meta("thread_name", tid, ws.Name))
			}
			evs = append(evs, TraceEvent{
				Name: ws.Name, Cat: "worker", Ph: "X",
				Ts: micros(ws.Start.Sub(q.Start)), Dur: micros(ws.Dur),
				Pid: pid, Tid: tid,
			})
			for _, ms := range ws.Children {
				evs = append(evs, TraceEvent{
					Name: ms.Name, Cat: "morsel", Ph: "X",
					Ts: micros(ms.Start.Sub(q.Start)), Dur: micros(ms.Dur),
					Pid: pid, Tid: tid,
				})
			}
		}
	}
	if q.Err != "" {
		evs = append(evs, TraceEvent{
			Name: "error: " + q.Err, Cat: "error", Ph: "i",
			Ts: micros(q.Total), Pid: pid, Tid: 0,
			Args: map[string]any{"s": "p"},
		})
	}
	return evs
}

// TraceJSON renders a profile as a Chrome trace-event JSON array, loadable
// by Perfetto (ui.perfetto.dev) and chrome://tracing.
func TraceJSON(q *QueryProfile) ([]byte, error) {
	return json.Marshal(TraceEvents(q))
}
