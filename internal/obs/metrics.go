package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Metrics is the engine's cumulative counter set. All fields are atomics:
// the engine updates them once per query (and once per parallel run for the
// worker gauges), never on the per-tuple path.
type Metrics struct {
	// Query counters.
	Queries atomic.Int64 // completed queries (including failures)
	Errors  atomic.Int64 // queries that returned an error
	RowsOut atomic.Int64 // total result rows produced

	// Robustness outcomes (subsets of Errors, classified at the query
	// boundary; see DESIGN.md, Robustness).
	QueriesCancelled   atomic.Int64 // aborted by caller cancellation
	QueriesTimedOut    atomic.Int64 // aborted by Config.QueryTimeout
	QueriesMemRejected atomic.Int64 // aborted by Config.QueryMemBudget
	QueriesPanicked    atomic.Int64 // runtime panic converted to an error

	// Per-phase cumulative wall time.
	ParseNanos    atomic.Int64
	CalculusNanos atomic.Int64
	OptimizeNanos atomic.Int64
	CompileNanos  atomic.Int64
	ExecuteNanos  atomic.Int64

	// Parallelism.
	ParallelQueries atomic.Int64 // queries that ran with > 1 worker
	WorkersLaunched atomic.Int64 // total worker goroutines spawned
	MorselsScanned  atomic.Int64 // total morsels executed
	ActiveQueries   atomic.Int64 // gauge: queries in flight
	ActiveWorkers   atomic.Int64 // gauge: worker goroutines in flight

	// Scan plug-in totals (summed from per-query operator profiles).
	ScanBytesRead    atomic.Int64
	ScanFieldsParsed atomic.Int64
	ScanIndexHits    atomic.Int64

	// Compiled-plan cache outcomes (engine-level, one per query).
	PlanCacheHits   atomic.Int64
	PlanCacheMisses atomic.Int64

	// SlowQueries counts queries recorded by the slow-query log.
	SlowQueries atomic.Int64

	// Cluster scatter/gather (internal/cluster). The first six count on the
	// coordinator; FragmentsServed counts on workers.
	ClusterQueries         atomic.Int64 // queries executed via scatter/gather
	ClusterFragments       atomic.Int64 // fragment partials merged into results
	ClusterRetries         atomic.Int64 // fragment attempts retried on another worker
	ClusterHedges          atomic.Int64 // hedged (speculative duplicate) fragment attempts
	ClusterFallbacks       atomic.Int64 // eligible queries that fell back to local execution
	ClusterErrors          atomic.Int64 // distributed queries that returned an error
	ClusterFragmentsServed atomic.Int64 // fragment requests this engine served as a worker

	// ModeDecisions counts compile-time execution-mode decisions as a flat
	// mode × source matrix (see ModeDecisionIndex); rendered as the labeled
	// proteus_plan_mode_decisions_total family.
	ModeDecisions [len(ModeDecisionModes) * len(ModeDecisionSources)]atomic.Int64

	// Admission gate instrumentation: AdmissionQueued is a gauge of queries
	// currently waiting for (or taking) an admission slot; AdmissionWait
	// records how long each gated query waited before admission — time that,
	// since the service refactor, no longer counts against QueryTimeout.
	AdmissionQueued atomic.Int64
	AdmissionWait   Histogram

	// Latency histograms (observability v2): one per life-cycle phase plus
	// end-to-end, fed once per observed query.
	PhaseLatency [5]Histogram
	TotalLatency Histogram
}

// ModeDecisionModes and ModeDecisionSources enumerate the execution-mode
// decision matrix: which engine a plan compiled to, and why.
var (
	ModeDecisionModes   = [...]string{"tuple", "vectorized"}
	ModeDecisionSources = [...]string{"measured", "explore", "heuristic", "config"}
)

// ModeDecisionIndex maps a (mode, source) pair onto its ModeDecisions cell
// (-1 for unknown labels).
func ModeDecisionIndex(mode, source string) int {
	mi, si := -1, -1
	for i, m := range ModeDecisionModes {
		if m == mode {
			mi = i
		}
	}
	for i, s := range ModeDecisionSources {
		if s == source {
			si = i
		}
	}
	if mi < 0 || si < 0 {
		return -1
	}
	return mi*len(ModeDecisionSources) + si
}

// CountModeDecision increments one cell of the mode-decision matrix.
func (m *Metrics) CountModeDecision(mode, source string) {
	if i := ModeDecisionIndex(mode, source); i >= 0 {
		m.ModeDecisions[i].Add(1)
	}
}

// ModeDecisionCount is one rendered cell of the decision matrix.
type ModeDecisionCount struct {
	Mode   string `json:"mode"`
	Source string `json:"source"`
	Count  int64  `json:"count"`
}

// ObserveLatency folds one profile's phase and total durations into the
// latency histograms.
func (m *Metrics) ObserveLatency(q *QueryProfile) {
	for _, s := range q.Phases {
		if i := PhaseIndex(s.Name); i >= 0 {
			m.PhaseLatency[i].Observe(s.Dur)
		}
	}
	m.TotalLatency.Observe(q.Total)
}

// AddPhase accumulates one phase duration by name.
func (m *Metrics) AddPhase(name string, nanos int64) {
	switch name {
	case PhaseParse:
		m.ParseNanos.Add(nanos)
	case PhaseCalculus:
		m.CalculusNanos.Add(nanos)
	case PhaseOptimize:
		m.OptimizeNanos.Add(nanos)
	case PhaseCompile:
		m.CompileNanos.Add(nanos)
	case PhaseExecute:
		m.ExecuteNanos.Add(nanos)
	}
}

// CacheCounters is the cache manager's contribution to a metrics snapshot.
type CacheCounters struct {
	Blocks     int   `json:"blocks"`
	JoinSides  int   `json:"join_sides"`
	Bytes      int64 `json:"bytes"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
	BuildNanos int64 `json:"build_nanos"`

	// Columnar cache v2: bitmap indexes and zone maps.
	Indexes     int   `json:"indexes"`      // blocks carrying a bitmap index
	IndexBytes  int64 `json:"index_bytes"`  // bytes held by bitmap indexes
	IndexBuilds int64 `json:"index_builds"` // indexes built (incl. rebuilt)
	IndexHits   int64 `json:"index_hits"`   // filters answered from an index
	ZoneSkips   int64 `json:"zone_skips"`   // scan windows skipped by zone maps
}

// Snapshot is a point-in-time copy of every engine metric, JSON-ready for
// the expvar-style endpoint.
type Snapshot struct {
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	RowsOut int64 `json:"rows_out"`

	QueriesCancelled   int64 `json:"queries_cancelled"`
	QueriesTimedOut    int64 `json:"queries_timed_out"`
	QueriesMemRejected int64 `json:"queries_mem_rejected"`
	QueriesPanicked    int64 `json:"queries_panicked"`

	ParseNanos    int64 `json:"parse_nanos"`
	CalculusNanos int64 `json:"calculus_nanos"`
	OptimizeNanos int64 `json:"optimize_nanos"`
	CompileNanos  int64 `json:"compile_nanos"`
	ExecuteNanos  int64 `json:"execute_nanos"`

	ParallelQueries int64 `json:"parallel_queries"`
	WorkersLaunched int64 `json:"workers_launched"`
	MorselsScanned  int64 `json:"morsels_scanned"`
	ActiveQueries   int64 `json:"active_queries"`
	ActiveWorkers   int64 `json:"active_workers"`

	ScanBytesRead    int64 `json:"scan_bytes_read"`
	ScanFieldsParsed int64 `json:"scan_fields_parsed"`
	ScanIndexHits    int64 `json:"scan_index_hits"`

	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`

	SlowQueries int64 `json:"slow_queries"`

	ClusterQueries         int64 `json:"cluster_queries"`
	ClusterFragments       int64 `json:"cluster_fragments"`
	ClusterRetries         int64 `json:"cluster_retries"`
	ClusterHedges          int64 `json:"cluster_hedges"`
	ClusterFallbacks       int64 `json:"cluster_fallbacks"`
	ClusterErrors          int64 `json:"cluster_errors"`
	ClusterFragmentsServed int64 `json:"cluster_fragments_served"`

	// ModeDecisions lists the non-zero cells of the execution-mode decision
	// matrix (adaptive tuple-vs-vectorized selection).
	ModeDecisions []ModeDecisionCount `json:"mode_decisions,omitempty"`

	// AdmissionQueued is the queue-depth gauge of the admission gate;
	// AdmissionWait summarizes how long gated queries waited for a slot.
	AdmissionQueued int64          `json:"admission_queued"`
	AdmissionWait   LatencySummary `json:"admission_wait"`

	Cache CacheCounters `json:"cache"`

	Datasets         int `json:"datasets"`
	ProfilesRetained int `json:"profiles_retained"`
	PlanStatsTracked int `json:"plan_stats_tracked"`

	// Latency carries one histogram summary per life-cycle phase plus the
	// end-to-end "total" row, in that order.
	Latency []LatencySummary `json:"latency"`
}

// LatencySummary is one latency histogram's snapshot plus its estimated
// quantiles (upper bucket boundaries, over-estimates by at most 2x).
type LatencySummary struct {
	Phase      string             `json:"phase"`
	Count      int64              `json:"count"`
	SumSeconds float64            `json:"sum_seconds"`
	P50        float64            `json:"p50_seconds"`
	P95        float64            `json:"p95_seconds"`
	P99        float64            `json:"p99_seconds"`
	Buckets    [HistBuckets]int64 `json:"buckets"`
}

// summarize renders one histogram into its summary row.
func summarize(phase string, h *Histogram) LatencySummary {
	s := h.Snapshot()
	return LatencySummary{
		Phase:      phase,
		Count:      s.Count,
		SumSeconds: s.SumSeconds,
		P50:        s.Quantile(0.50),
		P95:        s.Quantile(0.95),
		P99:        s.Quantile(0.99),
		Buckets:    s.Buckets,
	}
}

// Snapshot captures the current counter values plus externally supplied
// cache counters.
func (m *Metrics) Snapshot(cache CacheCounters) Snapshot {
	return Snapshot{
		Queries:            m.Queries.Load(),
		Errors:             m.Errors.Load(),
		RowsOut:            m.RowsOut.Load(),
		QueriesCancelled:   m.QueriesCancelled.Load(),
		QueriesTimedOut:    m.QueriesTimedOut.Load(),
		QueriesMemRejected: m.QueriesMemRejected.Load(),
		QueriesPanicked:    m.QueriesPanicked.Load(),
		ParseNanos:         m.ParseNanos.Load(),
		CalculusNanos:      m.CalculusNanos.Load(),
		OptimizeNanos:      m.OptimizeNanos.Load(),
		CompileNanos:       m.CompileNanos.Load(),
		ExecuteNanos:       m.ExecuteNanos.Load(),
		ParallelQueries:    m.ParallelQueries.Load(),
		WorkersLaunched:    m.WorkersLaunched.Load(),
		MorselsScanned:     m.MorselsScanned.Load(),
		ActiveQueries:      m.ActiveQueries.Load(),
		ActiveWorkers:      m.ActiveWorkers.Load(),
		ScanBytesRead:      m.ScanBytesRead.Load(),
		ScanFieldsParsed:   m.ScanFieldsParsed.Load(),
		ScanIndexHits:      m.ScanIndexHits.Load(),
		PlanCacheHits:      m.PlanCacheHits.Load(),
		PlanCacheMisses:    m.PlanCacheMisses.Load(),
		SlowQueries:        m.SlowQueries.Load(),
		ClusterQueries:     m.ClusterQueries.Load(),
		ClusterFragments:   m.ClusterFragments.Load(),
		ClusterRetries:     m.ClusterRetries.Load(),
		ClusterHedges:      m.ClusterHedges.Load(),
		ClusterFallbacks:   m.ClusterFallbacks.Load(),
		ClusterErrors:      m.ClusterErrors.Load(),

		ClusterFragmentsServed: m.ClusterFragmentsServed.Load(),

		ModeDecisions:   m.modeDecisionCounts(),
		AdmissionQueued: m.AdmissionQueued.Load(),
		AdmissionWait:   summarize("admission_wait", &m.AdmissionWait),
		Cache:           cache,
		Latency:         m.latencySummaries(),
	}
}

// modeDecisionCounts renders the non-zero cells of the decision matrix in
// matrix order (deterministic).
func (m *Metrics) modeDecisionCounts() []ModeDecisionCount {
	var out []ModeDecisionCount
	for mi, mode := range ModeDecisionModes {
		for si, source := range ModeDecisionSources {
			n := m.ModeDecisions[mi*len(ModeDecisionSources)+si].Load()
			if n > 0 {
				out = append(out, ModeDecisionCount{Mode: mode, Source: source, Count: n})
			}
		}
	}
	return out
}

// latencySummaries snapshots every latency histogram, phases first, the
// end-to-end "total" row last.
func (m *Metrics) latencySummaries() []LatencySummary {
	out := make([]LatencySummary, 0, len(Phases)+1)
	for i, name := range Phases {
		out = append(out, summarize(name, &m.PhaseLatency[i]))
	}
	return append(out, summarize("total", &m.TotalLatency))
}

// seconds renders nanoseconds as fractional seconds for Prometheus.
func seconds(nanos int64) string { return fmt.Sprintf("%g", float64(nanos)/1e9) }

// escapeHelp escapes HELP text per the Prometheus text exposition format:
// backslash and line feed only.
func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and line feed. (Go's %q is close but over-escapes and
// differs on control characters, so the spec's replacer is spelled out.)
func escapeLabel(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(s)
}

// promBound renders a histogram bucket boundary for the le label.
func promBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// Prometheus renders the snapshot in the Prometheus text exposition format
// (hand-rolled: the repo takes no client-library dependency).
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	counter := func(name, help, value string) {
		b.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n")
		b.WriteString("# TYPE " + name + " counter\n")
		b.WriteString(name + " " + value + "\n")
	}
	gauge := func(name, help string, v int64) {
		b.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n")
		b.WriteString("# TYPE " + name + " gauge\n")
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}

	counter("proteus_queries_total", "Completed queries.", fmt.Sprint(s.Queries))
	counter("proteus_query_errors_total", "Queries that returned an error.", fmt.Sprint(s.Errors))
	counter("proteus_rows_out_total", "Result rows produced.", fmt.Sprint(s.RowsOut))
	counter("proteus_queries_cancelled_total", "Queries aborted by caller cancellation.", fmt.Sprint(s.QueriesCancelled))
	counter("proteus_queries_timed_out_total", "Queries aborted by the configured timeout.", fmt.Sprint(s.QueriesTimedOut))
	counter("proteus_queries_mem_rejected_total", "Queries aborted by the memory budget.", fmt.Sprint(s.QueriesMemRejected))
	counter("proteus_queries_panicked_total", "Queries whose panic was converted to an error.", fmt.Sprint(s.QueriesPanicked))

	b.WriteString("# HELP proteus_phase_seconds_total Cumulative wall time per query life-cycle phase.\n")
	b.WriteString("# TYPE proteus_phase_seconds_total counter\n")
	phases := []struct {
		name  string
		nanos int64
	}{
		{PhaseParse, s.ParseNanos},
		{PhaseCalculus, s.CalculusNanos},
		{PhaseOptimize, s.OptimizeNanos},
		{PhaseCompile, s.CompileNanos},
		{PhaseExecute, s.ExecuteNanos},
	}
	for _, p := range phases {
		fmt.Fprintf(&b, "proteus_phase_seconds_total{phase=\"%s\"} %s\n", escapeLabel(p.name), seconds(p.nanos))
	}

	counter("proteus_parallel_queries_total", "Queries that ran with more than one worker.", fmt.Sprint(s.ParallelQueries))
	counter("proteus_workers_launched_total", "Worker goroutines spawned.", fmt.Sprint(s.WorkersLaunched))
	counter("proteus_morsels_scanned_total", "Morsels executed.", fmt.Sprint(s.MorselsScanned))
	gauge("proteus_active_queries", "Queries currently executing.", s.ActiveQueries)
	gauge("proteus_active_workers", "Worker goroutines currently executing.", s.ActiveWorkers)

	counter("proteus_scan_bytes_read_total", "Bytes read by scan plug-ins.", fmt.Sprint(s.ScanBytesRead))
	counter("proteus_scan_fields_parsed_total", "Fields parsed by scan plug-ins.", fmt.Sprint(s.ScanFieldsParsed))
	counter("proteus_scan_index_hits_total", "Structural-index lookups served.", fmt.Sprint(s.ScanIndexHits))

	counter("proteus_plan_cache_hits_total", "Queries served from the compiled-plan cache.", fmt.Sprint(s.PlanCacheHits))
	counter("proteus_plan_cache_misses_total", "Queries compiled fresh (plan-cache misses).", fmt.Sprint(s.PlanCacheMisses))

	counter("proteus_slow_queries_total", "Queries recorded by the slow-query log.", fmt.Sprint(s.SlowQueries))

	counter("proteus_cluster_queries_total", "Queries executed via cluster scatter/gather.", fmt.Sprint(s.ClusterQueries))
	counter("proteus_cluster_fragments_total", "Fragment partials merged into distributed results.", fmt.Sprint(s.ClusterFragments))
	counter("proteus_cluster_retries_total", "Fragment attempts retried on another worker.", fmt.Sprint(s.ClusterRetries))
	counter("proteus_cluster_hedges_total", "Hedged (speculative duplicate) fragment attempts.", fmt.Sprint(s.ClusterHedges))
	counter("proteus_cluster_fallbacks_total", "Cluster-eligible queries that fell back to local execution.", fmt.Sprint(s.ClusterFallbacks))
	counter("proteus_cluster_errors_total", "Distributed queries that returned an error.", fmt.Sprint(s.ClusterErrors))
	counter("proteus_cluster_fragments_served_total", "Fragment requests this engine served as a cluster worker.", fmt.Sprint(s.ClusterFragmentsServed))

	if len(s.ModeDecisions) > 0 {
		b.WriteString("# HELP proteus_plan_mode_decisions_total Compile-time execution-mode decisions by mode and source.\n")
		b.WriteString("# TYPE proteus_plan_mode_decisions_total counter\n")
		for _, d := range s.ModeDecisions {
			fmt.Fprintf(&b, "proteus_plan_mode_decisions_total{mode=\"%s\",source=\"%s\"} %d\n",
				escapeLabel(d.Mode), escapeLabel(d.Source), d.Count)
		}
	}

	gauge("proteus_admission_queued", "Queries waiting for an admission slot.", s.AdmissionQueued)
	{
		const histName = "proteus_admission_wait_seconds"
		b.WriteString("# HELP " + histName + " Time gated queries spent waiting for an admission slot.\n")
		b.WriteString("# TYPE " + histName + " histogram\n")
		var cum int64
		for i, n := range s.AdmissionWait.Buckets {
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", histName, promBound(BucketBound(i)), cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n", histName, s.AdmissionWait.SumSeconds)
		fmt.Fprintf(&b, "%s_count %d\n", histName, s.AdmissionWait.Count)
	}

	// Latency histograms: one family, phase-labeled, cumulative le buckets.
	if len(s.Latency) > 0 {
		const histName = "proteus_query_duration_seconds"
		b.WriteString("# HELP " + histName + " Query latency by life-cycle phase (phase=\"total\" is end-to-end).\n")
		b.WriteString("# TYPE " + histName + " histogram\n")
		for _, l := range s.Latency {
			phase := escapeLabel(l.Phase)
			var cum int64
			for i, n := range l.Buckets {
				cum += n
				fmt.Fprintf(&b, "%s_bucket{phase=\"%s\",le=\"%s\"} %d\n",
					histName, phase, promBound(BucketBound(i)), cum)
			}
			fmt.Fprintf(&b, "%s_sum{phase=\"%s\"} %g\n", histName, phase, l.SumSeconds)
			fmt.Fprintf(&b, "%s_count{phase=\"%s\"} %d\n", histName, phase, l.Count)
		}
	}

	gauge("proteus_cache_blocks", "Materialized cache blocks.", int64(s.Cache.Blocks))
	gauge("proteus_cache_join_sides", "Materialized hash-join build sides.", int64(s.Cache.JoinSides))
	gauge("proteus_cache_bytes", "Bytes held by cache blocks.", s.Cache.Bytes)
	counter("proteus_cache_hits_total", "Cache lookup hits.", fmt.Sprint(s.Cache.Hits))
	counter("proteus_cache_misses_total", "Cache lookup misses.", fmt.Sprint(s.Cache.Misses))
	counter("proteus_cache_evictions_total", "Cache blocks evicted.", fmt.Sprint(s.Cache.Evictions))
	counter("proteus_cache_build_seconds_total", "Wall time materializing and registering cache blocks.", seconds(s.Cache.BuildNanos))

	gauge("proteus_cache_indexes", "Cache blocks carrying a bitmap index.", int64(s.Cache.Indexes))
	gauge("proteus_cache_index_bytes", "Bytes held by cache bitmap indexes.", s.Cache.IndexBytes)
	counter("proteus_cache_index_builds_total", "Bitmap indexes built over cache blocks.", fmt.Sprint(s.Cache.IndexBuilds))
	counter("proteus_cache_index_hits_total", "Filters answered from a cache bitmap index.", fmt.Sprint(s.Cache.IndexHits))
	counter("proteus_cache_zone_skips_total", "Scan windows skipped by cache zone maps.", fmt.Sprint(s.Cache.ZoneSkips))

	gauge("proteus_datasets", "Registered datasets.", int64(s.Datasets))
	gauge("proteus_profiles_retained", "Query profiles held in the ring.", int64(s.ProfilesRetained))
	gauge("proteus_plan_stats_tracked", "Plan fingerprints tracked by the feedback store.", int64(s.PlanStatsTracked))
	return b.String()
}

// sortCounters orders extra counters by name for deterministic rendering.
func sortCounters(cs []Counter) []Counter {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	return cs
}
