// The per-plan runtime feedback store (observability v2): a bounded map from
// compiled-plan fingerprint to running execution statistics. The fingerprint
// is the same structural key the compiled-plan cache uses, so a cached plan's
// accumulated history survives recompilation and is available to the
// optimizer as a measured cost model (ROADMAP item 3: adaptive tuple-vs-
// vectorized mode choice from observed rows/sec, not static heuristics).
package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// ModeStats accumulates execution totals for one execution mode (tuple-at-
// a-time or vectorized), enough to derive observed rows/sec.
type ModeStats struct {
	Runs  int64 `json:"runs"`
	Rows  int64 `json:"rows"`
	Nanos int64 `json:"nanos"`
	// Ewma is an exponentially-weighted moving average of per-run rows/sec.
	// A plan's first run often pays a one-time cost (cold columnar cache,
	// page cache misses) that would skew a lifetime average forever; the
	// EWMA lets recent steady-state runs dominate the mode decision.
	Ewma float64 `json:"ewma_rows_per_sec,omitempty"`
}

// ewmaAlpha weights the newest run in the throughput EWMA. 0.6 forgets a
// cold first run within two steady-state runs while still damping noise.
const ewmaAlpha = 0.6

// fold adds one run's totals to the mode's accumulators.
func (m *ModeStats) fold(total time.Duration, rows int64) {
	m.Runs++
	m.Rows += rows
	m.Nanos += int64(total)
	if total <= 0 {
		return
	}
	rps := float64(rows) / (float64(total) / 1e9)
	if m.Runs == 1 {
		m.Ewma = rps
		return
	}
	m.Ewma = ewmaAlpha*rps + (1-ewmaAlpha)*m.Ewma
}

// RowsPerSec is the mode's observed throughput (0 when unmeasured): the
// recency-weighted EWMA when available, else the lifetime average.
func (m ModeStats) RowsPerSec() float64 {
	if m.Ewma > 0 {
		return m.Ewma
	}
	if m.Nanos <= 0 {
		return 0
	}
	return float64(m.Rows) / (float64(m.Nanos) / 1e9)
}

// planStats is the mutable per-fingerprint record (guarded by the store's
// lock).
type planStats struct {
	execs int64
	errs  int64
	rows  int64
	// Welford accumulators over total nanos.
	mean float64
	m2   float64
	// Per-phase running mean nanos (indexed by PhaseIndex; only observed
	// executions contribute — plan-cache hits skip the front-end phases).
	phaseMean  [5]float64
	phaseExecs [5]int64
	tuple      ModeStats
	vectorized ModeStats
	// Last compile-time mode decision for the plan ("tuple"/"vectorized")
	// and how it was made ("measured"/"explore"/"heuristic"/"config").
	mode       string
	modeSource string
	// vecIneligible records that a forced batch compilation produced no
	// vectorized segment, so auto mode stops re-exploring the plan.
	vecIneligible bool
	lastUsed      int64 // store tick, for eviction
	query         string
}

// PlanStats is a point-in-time copy of one plan's feedback record.
type PlanStats struct {
	Fingerprint string `json:"fingerprint"`
	// Query is a representative query text for the fingerprint.
	Query      string  `json:"query"`
	Executions int64   `json:"executions"`
	Errors     int64   `json:"errors,omitempty"`
	Rows       int64   `json:"rows"`
	MeanNanos  float64 `json:"mean_nanos"`
	// StddevNanos is the sample standard deviation of total time (0 with
	// fewer than two executions).
	StddevNanos float64 `json:"stddev_nanos"`
	// PhaseMeanNanos holds per-phase mean nanos in Phases order; entries are
	// 0 for phases never observed (e.g. plan-cache hits skip parse..compile).
	PhaseMeanNanos [5]float64 `json:"phase_mean_nanos"`
	Tuple          ModeStats  `json:"tuple"`
	Vectorized     ModeStats  `json:"vectorized"`
	// Mode and ModeSource describe the last compile-time execution-mode
	// decision for this plan: which engine it got ("tuple"/"vectorized") and
	// why ("measured" feedback, one-off "explore", static "heuristic", or
	// forced by "config"). Empty until the plan is compiled with decision
	// recording in place.
	Mode       string `json:"mode,omitempty"`
	ModeSource string `json:"mode_source,omitempty"`
	// VecIneligible marks plans a forced batch compile could not vectorize;
	// auto mode stops exploring them.
	VecIneligible bool `json:"vec_ineligible,omitempty"`
}

// PlanFeedback is the bounded feedback store. All methods are
// concurrency-safe and nil-safe (a nil store ignores observations).
type PlanFeedback struct {
	mu    sync.Mutex
	cap   int
	tick  int64
	plans map[string]*planStats
}

// DefaultPlanFeedbackSize bounds the store when the engine config leaves the
// size unset.
const DefaultPlanFeedbackSize = 256

// NewPlanFeedback returns a store retaining stats for up to capacity
// fingerprints (capacity < 1 uses the default); least-recently-used entries
// are evicted beyond that.
func NewPlanFeedback(capacity int) *PlanFeedback {
	if capacity < 1 {
		capacity = DefaultPlanFeedbackSize
	}
	return &PlanFeedback{cap: capacity, plans: make(map[string]*planStats)}
}

// get returns (creating if needed) the record for fp. Caller holds mu.
func (f *PlanFeedback) get(fp, query string) *planStats {
	ps := f.plans[fp]
	if ps == nil {
		if len(f.plans) >= f.cap {
			f.evictOne()
		}
		ps = &planStats{query: query}
		f.plans[fp] = ps
	} else if ps.query == "" {
		ps.query = query
	}
	f.tick++
	ps.lastUsed = f.tick
	return ps
}

// evictOne drops the least-recently-used record. Caller holds mu.
func (f *PlanFeedback) evictOne() {
	var victim string
	var oldest int64 = math.MaxInt64
	for fp, ps := range f.plans {
		if ps.lastUsed < oldest {
			oldest = ps.lastUsed
			victim = fp
		}
	}
	delete(f.plans, victim)
}

// observe folds one execution into the record. Caller holds mu.
func (ps *planStats) observe(total time.Duration, rows int64, vectorized, failed bool) {
	ps.execs++
	if failed {
		ps.errs++
	}
	ps.rows += rows
	x := float64(total)
	delta := x - ps.mean
	ps.mean += delta / float64(ps.execs)
	ps.m2 += delta * (x - ps.mean)
	m := &ps.tuple
	if vectorized {
		m = &ps.vectorized
	}
	m.fold(total, rows)
}

// Observe records one execution known only by its totals — the plain
// (unobserved) query path, where no QueryProfile exists.
func (f *PlanFeedback) Observe(fp, query string, total time.Duration, rows int64, vectorized, failed bool) {
	if f == nil || fp == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.get(fp, query).observe(total, rows, vectorized, failed)
}

// ObserveProfile records one fully-profiled execution, including the
// per-phase breakdown.
func (f *PlanFeedback) ObserveProfile(q *QueryProfile) {
	if f == nil || q.Fingerprint == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps := f.get(q.Fingerprint, q.Query)
	ps.observe(q.Total, q.Rows, q.Vectorized, q.Err != "")
	for _, s := range q.Phases {
		i := PhaseIndex(s.Name)
		if i < 0 {
			continue
		}
		ps.phaseExecs[i]++
		ps.phaseMean[i] += (float64(s.Dur) - ps.phaseMean[i]) / float64(ps.phaseExecs[i])
	}
}

// NoteModeDecision records a compile-time execution-mode decision for the
// plan: mode is the compiled outcome ("tuple"/"vectorized"), source how the
// choice was made ("measured"/"explore"/"heuristic"/"config").
func (f *PlanFeedback) NoteModeDecision(fp, query, mode, source string) {
	if f == nil || fp == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps := f.get(fp, query)
	ps.mode, ps.modeSource = mode, source
}

// NoteVecIneligible marks a plan whose forced batch compilation produced no
// vectorized segment, so adaptive mode selection stops exploring it.
func (f *PlanFeedback) NoteVecIneligible(fp string) {
	if f == nil || fp == "" {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.get(fp, "").vecIneligible = true
}

// Lookup returns the stats for one fingerprint (ok=false when untracked).
func (f *PlanFeedback) Lookup(fp string) (PlanStats, bool) {
	if f == nil {
		return PlanStats{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps := f.plans[fp]
	if ps == nil {
		return PlanStats{}, false
	}
	return ps.snapshot(fp), true
}

// snapshot copies a record. Caller holds mu.
func (ps *planStats) snapshot(fp string) PlanStats {
	out := PlanStats{
		Fingerprint:    fp,
		Query:          ps.query,
		Executions:     ps.execs,
		Errors:         ps.errs,
		Rows:           ps.rows,
		MeanNanos:      ps.mean,
		PhaseMeanNanos: ps.phaseMean,
		Tuple:          ps.tuple,
		Vectorized:     ps.vectorized,
		Mode:           ps.mode,
		ModeSource:     ps.modeSource,
		VecIneligible:  ps.vecIneligible,
	}
	if ps.execs > 1 {
		out.StddevNanos = math.Sqrt(ps.m2 / float64(ps.execs-1))
	}
	return out
}

// Snapshot returns all tracked plans, most-executed first.
func (f *PlanFeedback) Snapshot() []PlanStats {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PlanStats, 0, len(f.plans))
	for fp, ps := range f.plans {
		out = append(out, ps.snapshot(fp))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Executions != out[j].Executions {
			return out[i].Executions > out[j].Executions
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// Len reports the number of tracked fingerprints. Nil-safe.
func (f *PlanFeedback) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.plans)
}
