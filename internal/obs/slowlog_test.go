package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func slowProfile(id int64, total time.Duration) *QueryProfile {
	return &QueryProfile{
		ID:    id,
		Lang:  "sql",
		Query: "SELECT 1",
		Start: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Total: total,
		Rows:  1,
		Phases: []Span{
			{Name: PhaseParse, Dur: total / 10},
			{Name: PhaseExecute, Dur: total / 2},
		},
		Fingerprint: "fp-slow",
		Attr:        QueryAttr{BytesRead: 100, CacheHits: 2, MemPeakBytes: 4096},
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8, nil)
	if l.Offer(slowProfile(1, 100*time.Microsecond)) {
		t.Error("sub-threshold query must be rejected")
	}
	if !l.Offer(slowProfile(2, time.Millisecond)) {
		t.Error("query exactly at the threshold must be accepted")
	}
	if !l.Offer(slowProfile(3, time.Second)) {
		t.Error("over-threshold query must be accepted")
	}
	if l.Logged() != 2 {
		t.Errorf("logged = %d, want 2", l.Logged())
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap[0].ID != 3 || snap[1].ID != 2 {
		t.Errorf("snapshot order = %v, want newest first [3 2]", ids(snap))
	}
	var nilLog *SlowLog
	if nilLog.Offer(slowProfile(4, time.Hour)) || nilLog.Snapshot() != nil || nilLog.Logged() != 0 {
		t.Error("nil slow log must accept nothing")
	}
}

func ids(snap []*SlowQuery) []int64 {
	out := make([]int64, len(snap))
	for i, s := range snap {
		out[i] = s.ID
	}
	return out
}

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(0, 3, nil)
	for i := int64(1); i <= 5; i++ {
		l.Offer(slowProfile(i, time.Second))
	}
	snap := l.Snapshot()
	if len(snap) != 3 || snap[0].ID != 5 || snap[1].ID != 4 || snap[2].ID != 3 {
		t.Errorf("snapshot = %v, want [5 4 3]", ids(snap))
	}
	if l.Logged() != 5 {
		t.Errorf("logged = %d, want 5 (evicted records still count)", l.Logged())
	}
}

// TestSlowLogJSONLWriter checks the sink receives one parseable JSON object
// per line with the structured fields the log promises.
func TestSlowLogJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(time.Millisecond, 4, &buf)
	qp := slowProfile(9, 5*time.Millisecond)
	qp.Workers = 2
	qp.Root = &OpProfile{Op: "Scan t", Rows: 100, EstRows: 10}
	l.Offer(qp)
	l.Offer(slowProfile(10, 2*time.Millisecond))

	sc := bufio.NewScanner(&buf)
	var lines []SlowQuery
	for sc.Scan() {
		var rec SlowQuery
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not JSON: %v", len(lines)+1, err)
		}
		lines = append(lines, rec)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d JSONL lines, want 2", len(lines))
	}
	first := lines[0]
	if first.ID != 9 || first.Query != "SELECT 1" || first.TotalNanos != int64(5*time.Millisecond) {
		t.Errorf("first record = %+v", first)
	}
	if first.PhaseNanos[PhaseExecute] != int64(2500*time.Microsecond) {
		t.Errorf("execute phase nanos = %d", first.PhaseNanos[PhaseExecute])
	}
	if first.Attr.BytesRead != 100 || first.Attr.CacheHits != 2 || first.Attr.MemPeakBytes != 4096 {
		t.Errorf("attr = %+v", first.Attr)
	}
	if first.Misestimate == nil || first.Misestimate.Op != "Scan t" || first.Misestimate.Factor != 10 {
		t.Errorf("misestimate = %+v, want Scan t at 10x", first.Misestimate)
	}
}

func TestRenderSlowQueryFields(t *testing.T) {
	qp := slowProfile(9, 5*time.Millisecond)
	qp.Root = &OpProfile{Op: "Scan t", Rows: 100, EstRows: 10}
	out := RenderSlowQuery(newSlowQuery(qp))
	for _, want := range []string{
		"query 9 (sql): SELECT 1",
		"total 5ms",
		"plan=fp-slow",
		"bytes_read=100",
		"mem_peak=4096",
		"worst misestimate: Scan t",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
