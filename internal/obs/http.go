package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the engine's observability surface on its own mux (so the
// caller decides the listener — the engine never opens ports on its own):
//
//	/metrics        Prometheus text exposition format (incl. histograms)
//	/debug/vars     expvar-style JSON snapshot (incl. latency quantiles)
//	/debug/queries  recent query profiles (JSON, newest first)
//	/debug/trace    Chrome trace-event JSON for one profile (?id=N; the
//	                newest profile when id is omitted) — load in Perfetto
//	/debug/slow     slow-query log records (JSON, newest first)
//	/debug/plans    per-plan feedback store (JSON, most-executed first)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// snapshot is called per request; profiles, slow, and plans may be nil.
// Errors are always JSON objects of the form {"error": "..."} so service
// clients can parse every response uniformly.
func Handler(snapshot func() Snapshot, profiles *Ring, slow *SlowLog, plans *PlanFeedback) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(snapshot().Prometheus()))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, snapshot())
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		var ps []*QueryProfile
		if profiles != nil {
			ps = profiles.Snapshot()
		}
		writeJSON(w, ps)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		var ps []*QueryProfile
		if profiles != nil {
			ps = profiles.Snapshot()
		}
		var target *QueryProfile
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseInt(idStr, 10, 64)
			if err != nil {
				WriteJSONError(w, http.StatusBadRequest, "bad id: "+err.Error())
				return
			}
			for _, p := range ps {
				if p.ID == id {
					target = p
					break
				}
			}
		} else if len(ps) > 0 {
			target = ps[0] // newest
		}
		if target == nil {
			WriteJSONError(w, http.StatusNotFound,
				"no such profile (the ring retains only recent queries)")
			return
		}
		data, err := TraceJSON(target)
		if err != nil {
			WriteJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Header().Set("Content-Disposition",
			`attachment; filename="proteus-query-`+strconv.FormatInt(target.ID, 10)+`.trace.json"`)
		_, _ = w.Write(data)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, slow.Snapshot())
	})
	mux.HandleFunc("/debug/plans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, plans.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON renders v as indented JSON. The document is encoded before the
// first write so an encode failure becomes a proper 500 instead of a 200
// with truncated output.
func writeJSON(w http.ResponseWriter, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		WriteJSONError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(append(data, '\n'))
}

// WriteJSONError writes a {"error": msg} body with the given status. Shared
// with the query service so every HTTP surface reports errors in one shape.
func WriteJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	data, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{msg})
	_, _ = w.Write(append(data, '\n'))
}
