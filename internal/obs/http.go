package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler serves the engine's observability surface on its own mux (so the
// caller decides the listener — the engine never opens ports on its own):
//
//	/metrics       Prometheus text exposition format
//	/debug/vars    expvar-style JSON snapshot
//	/debug/queries recent query profiles (JSON, newest first)
//	/debug/pprof/  the standard net/http/pprof handlers
//
// snapshot is called per request; profiles may be nil.
func Handler(snapshot func() Snapshot, profiles *Ring) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(snapshot().Prometheus()))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snapshot())
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ps []*QueryProfile
		if profiles != nil {
			ps = profiles.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ps)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
