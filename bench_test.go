// Benchmarks regenerating every table and figure of the paper's evaluation
// (§7), plus ablations of the design decisions DESIGN.md calls out. Each
// figure has one Benchmark* target whose sub-benchmarks cover the paper's
// (query template × system × selectivity) grid; cmd/benchrunner prints the
// same data as the paper's tables. Run with:
//
//	go test -bench=. -benchmem
package proteus_test

import (
	"fmt"
	"sync"
	"testing"

	"proteus"
	"proteus/internal/bench"
	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/expr"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// benchSF keeps the grid fast enough for -bench=. while preserving the
// relative shapes; raise via cmd/benchrunner -sf for bigger runs.
const benchSF = 0.002

var (
	fixtureOnce sync.Once
	fixture     *bench.TPCHFixture
	fixtureErr  error
)

func tpch(b *testing.B) *bench.TPCHFixture {
	b.Helper()
	fixtureOnce.Do(func() { fixture, fixtureErr = bench.NewTPCHFixture(benchSF) })
	if fixtureErr != nil {
		b.Fatalf("fixture: %v", fixtureErr)
	}
	return fixture
}

// runGrid executes one figure's experiment grid as sub-benchmarks.
func runGrid(b *testing.B, f *bench.TPCHFixture, exp func(*bench.TPCHFixture) ([]bench.Row, error)) {
	b.Helper()
	// One warm pass validates the grid; the measured loop repeats it.
	if _, err := exp(f); err != nil {
		b.Fatalf("experiment: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp(f); err != nil {
			b.Fatalf("experiment: %v", err)
		}
	}
}

// Figures 5–12 — the §7.1 synthetic grids.

func BenchmarkFig5JSONProjections(b *testing.B)   { runGrid(b, tpch(b), bench.Fig5) }
func BenchmarkFig6BinaryProjections(b *testing.B) { runGrid(b, tpch(b), bench.Fig6) }
func BenchmarkFig7JSONSelections(b *testing.B)    { runGrid(b, tpch(b), bench.Fig7) }
func BenchmarkFig8BinarySelections(b *testing.B)  { runGrid(b, tpch(b), bench.Fig8) }
func BenchmarkFig9JSONJoins(b *testing.B)         { runGrid(b, tpch(b), bench.Fig9) }
func BenchmarkFig10BinaryJoins(b *testing.B)      { runGrid(b, tpch(b), bench.Fig10) }
func BenchmarkFig11JSONGroupBys(b *testing.B)     { runGrid(b, tpch(b), bench.Fig11) }
func BenchmarkFig12BinaryGroupBys(b *testing.B)   { runGrid(b, tpch(b), bench.Fig12) }

// BenchmarkFig13CacheSpeedup — the §7.1 caching study (baseline vs. cached
// predicate over both templates).
func BenchmarkFig13CacheSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig13(benchSF); err != nil {
			b.Fatalf("fig13: %v", err)
		}
	}
}

// BenchmarkFig14SpamWorkload — the 50-query §7.2 workload on all three
// stacks (also yields Table 3's phase totals).
func BenchmarkFig14SpamWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSpam(1500); err != nil {
			b.Fatalf("spam: %v", err)
		}
	}
}

// BenchmarkTable3PhaseTotals — Table 3 proper: the phase accounting of the
// spam workload (load / middleware / Q39 / rest) is produced by the same
// run; this target reports the three stacks' totals as custom metrics.
func BenchmarkTable3PhaseTotals(b *testing.B) {
	var rep *bench.SpamReport
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = bench.RunSpam(1500)
		if err != nil {
			b.Fatalf("spam: %v", err)
		}
	}
	if rep != nil {
		b.ReportMetric(rep.Total[bench.StackPG], "pg-total-s")
		b.ReportMetric(rep.Total[bench.StackPolyglot], "poly-total-s")
		b.ReportMetric(rep.Total[bench.StackProteus], "proteus-total-s")
	}
}

// Per-system micro-benchmarks: one hot query per engine style, so
// -benchmem exposes the per-tuple allocation behavior that separates the
// compiled engine from the interpreted baselines.

func BenchmarkMicroCountProteus(b *testing.B) {
	f := tpch(b)
	q := fmt.Sprintf("SELECT COUNT(*) FROM lineitem_bin WHERE l_orderkey < %d", f.Data.MaxOrderKey/2)
	prep, err := f.PlanFor(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prep.Program.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroCountVolcano(b *testing.B) {
	f := tpch(b)
	q := fmt.Sprintf("SELECT COUNT(*) FROM lineitem_bin WHERE l_orderkey < %d", f.Data.MaxOrderKey/2)
	prep, err := f.PlanFor(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Volcano.RunPlan(prep.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroCountColumnar(b *testing.B) {
	f := tpch(b)
	q := fmt.Sprintf("SELECT COUNT(*) FROM lineitem_bin WHERE l_orderkey < %d", f.Data.MaxOrderKey/2)
	prep, err := f.PlanFor(q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Columnar.RunPlan(prep.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations — the design choices DESIGN.md calls out.

// BenchmarkAblationExprEval compares the compiled expression path (closure
// over typed registers) with the interpreted path (tree walk over boxed
// values) on the same arithmetic predicate.
func BenchmarkAblationExprEval(b *testing.B) {
	pred := &expr.BinOp{
		Op: expr.OpLt,
		L: &expr.BinOp{Op: expr.OpAdd,
			L: &expr.FieldAcc{Base: &expr.Ref{Name: "t"}, Name: "a"},
			R: &expr.FieldAcc{Base: &expr.Ref{Name: "t"}, Name: "b"}},
		R: &expr.Const{V: types.IntValue(100)},
	}
	b.Run("interpreted", func(b *testing.B) {
		row := types.RecordValue([]string{"a", "b"}, []types.Value{types.IntValue(30), types.IntValue(60)})
		env := expr.ValueEnv{"t": row}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := expr.Eval(pred, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		// Drive the full compiled pipeline over a 1-row dataset so the
		// closure path is measured end to end.
		db := proteus.Open(proteus.Config{})
		if err := db.RegisterInMemory("t", []byte("30,60\n"), "csv", &proteus.Schema{
			Fields: []proteus.Field{{Name: "a", Type: proteus.Int}, {Name: "b", Type: proteus.Int}},
		}); err != nil {
			b.Fatal(err)
		}
		prep, err := db.Engine().PrepareSQL("SELECT COUNT(*) FROM t WHERE a + b < 100")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prep.Program.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJSONIndex compares the three JSON lookup modes: the
// Level-0 associative index, the sequential-scan ablation (Level 0
// disabled), and the deterministic compressed index.
func BenchmarkAblationJSONIndex(b *testing.B) {
	t := bench.GenTPCH(benchSF)
	shapes := []struct {
		name string
		opts plugin.Options
	}{
		{"level0", plugin.Options{DisableDeterministic: true}},
		{"sequential", plugin.Options{DisableLevel0: true}},
		{"deterministic", plugin.Options{}},
	}
	for _, shape := range shapes {
		b.Run(shape.name, func(b *testing.B) {
			eng := engine.New(engine.Config{})
			eng.Mem().PutFile("mem://li.json", t.LineitemJSON)
			if err := eng.Register("li", "mem://li.json", "json", nil, shape.opts); err != nil {
				b.Fatal(err)
			}
			q := fmt.Sprintf("SELECT MAX(l_extendedprice) FROM li WHERE l_orderkey < %d", t.MaxOrderKey/2)
			prep, err := eng.PrepareSQL(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Program.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCSVIndexStride sweeps the every-Nth-field positional
// index granularity. The generated CSV is variable-width, so the seek path
// (not the fixed-width arithmetic path) is exercised.
func BenchmarkAblationCSVIndexStride(b *testing.B) {
	t := bench.GenTPCH(benchSF)
	for _, stride := range []int{2, 4, 8, 32} {
		b.Run(fmt.Sprintf("stride-%d", stride), func(b *testing.B) {
			eng := engine.New(engine.Config{})
			eng.Mem().PutFile("mem://li.csv", t.LineitemCSV)
			if err := eng.Register("li", "mem://li.csv", "csv", t.LineitemSchema,
				plugin.Options{IndexStride: stride}); err != nil {
				b.Fatal(err)
			}
			// Touch a late column so the index jump matters.
			prep, err := eng.PrepareSQL("SELECT MAX(l_tax) FROM li WHERE l_quantity < 100")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prep.Program.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRadixJoin compares the radix-partitioned hash join with
// the unpartitioned variant.
func BenchmarkAblationRadixJoin(b *testing.B) {
	f := tpch(b)
	q := fmt.Sprintf(
		"SELECT COUNT(*) FROM orders_bin o JOIN lineitem_bin l ON o.o_orderkey = l.l_orderkey WHERE l.l_orderkey < %d",
		f.Data.MaxOrderKey)
	for _, bits := range []int{0, 7} {
		b.Run(fmt.Sprintf("radix-%d", bits), func(b *testing.B) {
			exec.RadixBitsOverride = bits
			defer func() { exec.RadixBitsOverride = -1 }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prep, err := f.PlanFor(q)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := prep.Program.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCache measures the same JSON aggregation with caching
// off, cold (first, cache-building query), and warm (served from cache).
func BenchmarkAblationCache(b *testing.B) {
	t := bench.GenTPCH(benchSF)
	q := fmt.Sprintf("SELECT MAX(l_extendedprice), MAX(l_discount) FROM li WHERE l_orderkey < %d", t.MaxOrderKey/2)
	newEng := func(cache bool) *engine.Engine {
		eng := engine.New(engine.Config{CacheEnabled: cache})
		eng.Mem().PutFile("mem://li.json", t.LineitemJSON)
		if err := eng.Register("li", "mem://li.json", "json", nil, plugin.Options{}); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	b.Run("off", func(b *testing.B) {
		eng := newEng(false)
		for i := 0; i < b.N; i++ {
			if _, err := eng.QuerySQL(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		eng := newEng(true)
		if _, err := eng.QuerySQL(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.QuerySQL(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJoinSideReuse measures the partial cache match: the
// second query re-uses the first query's materialized hash-join side.
func BenchmarkAblationJoinSideReuse(b *testing.B) {
	t := bench.GenTPCH(benchSF)
	q := fmt.Sprintf(
		"SELECT COUNT(*) FROM lineitem_bin l JOIN orders_bin o ON l.l_orderkey = o.o_orderkey WHERE l.l_orderkey < %d",
		t.MaxOrderKey/2)
	mk := func(cache bool) *engine.Engine {
		eng := engine.New(engine.Config{CacheEnabled: cache})
		eng.Mem().PutFile("mem://li.bin", t.LineitemBin)
		eng.Mem().PutFile("mem://o.bin", t.OrdersBin)
		if err := eng.Register("lineitem_bin", "mem://li.bin", "bin", nil, plugin.Options{}); err != nil {
			b.Fatal(err)
		}
		if err := eng.Register("orders_bin", "mem://o.bin", "bin", nil, plugin.Options{}); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	b.Run("rebuild", func(b *testing.B) {
		eng := mk(false)
		for i := 0; i < b.N; i++ {
			if _, err := eng.QuerySQL(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("reused", func(b *testing.B) {
		eng := mk(true)
		if _, err := eng.QuerySQL(q); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.QuerySQL(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
