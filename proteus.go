// Package proteus is a query engine for heterogeneous data, reproducing
// "Fast Queries Over Heterogeneous Data Through Engine Customization"
// (Karpathiotakis, Alagiannis, Ailamaki — VLDB 2016).
//
// Proteus queries CSV, JSON, and relational binary files in place — no
// loading step — through a single interface (SQL for flat data, monoid
// comprehensions for nested data), and specializes its entire execution
// path to each query at compile time. Input plug-ins build per-format
// structural indexes on first access; adaptive caches materialize hot raw
// fields into binary columns as a side-effect of execution.
//
// Quickstart:
//
//	db := proteus.Open(proteus.Config{CacheEnabled: true})
//	if err := db.RegisterCSV("people", "people.csv", nil); err != nil { ... }
//	if err := db.RegisterJSON("events", "events.json"); err != nil { ... }
//	res, err := db.Query(`SELECT COUNT(*) FROM people p
//	                      JOIN events e ON p.id = e.pid WHERE e.score < 0.5`)
//	for _, row := range res.Rows { fmt.Println(row) }
//
// Comprehension syntax unlocks nested data (Example 3.1 of the paper):
//
//	res, err := db.QueryComprehension(`
//	    for { s <- Sailor, c <- s.children, c.age > 18 }
//	    yield bag (s.id, c.name)`)
package proteus

import (
	"context"
	"io"
	"net/http"
	"strings"
	"time"

	"proteus/internal/cache"
	"proteus/internal/cluster"
	"proteus/internal/engine"
	"proteus/internal/exec"
	"proteus/internal/obs"
	"proteus/internal/plugin"
	"proteus/internal/types"
)

// Config tunes a DB instance.
type Config struct {
	// CacheEnabled turns on adaptive caching: queries over verbose formats
	// (CSV, JSON) materialize the fields they convert into binary cache
	// columns, and later queries read those instead of the raw files.
	CacheEnabled bool
	// CacheBudget caps cache memory in bytes (0 = unlimited). Eviction is
	// LRU biased toward keeping data from costlier formats (JSON ≻ CSV).
	CacheBudget int64
	// CacheStrings opts in to caching string fields (off by default: the
	// paper's policy avoids polluting caches with verbose strings).
	CacheStrings bool
	// Indexes selects the bitmap-index policy for cached columns.
	// IndexesAuto (the default) builds a bitmap index on a cached column once
	// repeated selective predicates mark it hot; IndexesOn indexes every
	// predicate-touched cached column immediately; IndexesOff disables
	// bitmap indexes. Zone maps are always built — they cost 21 bytes per
	// 1024 rows. Results are identical in every mode.
	Indexes IndexMode
	// SampleEvery sets the statistics sampling stride during cold dataset
	// access (default 64).
	SampleEvery int
	// Parallelism sets the number of morsel-parallel workers per query
	// (0 = GOMAXPROCS; 1 forces serial execution). Queries whose driving
	// scan can be partitioned run one compiled pipeline clone per worker
	// and merge thread-local partials at the pipeline breaker.
	Parallelism int
	// Observability records a QueryProfile (phase spans + per-operator row
	// counts) for every query, retained in a bounded ring. Metrics() and
	// ExplainAnalyze work without it; the flag only controls always-on
	// per-query tracing. Overhead is a few percent (counters are updated
	// per batch/morsel, never per tuple; see DESIGN.md, Observability).
	Observability bool
	// ProfileRingSize bounds the retained recent-query profiles (default 32).
	ProfileRingSize int
	// OnQueryDone, when set, receives every finished query's profile
	// synchronously — the programmable per-query hook:
	//
	//	cfg.OnQueryDone = func(q proteus.QueryProfile) {
	//	    if q.Total > 100*time.Millisecond { log.Printf("slow: %s", q.Query) }
	//	}
	//
	// For the built-in structured slow-query log, see SlowQueryThreshold.
	OnQueryDone func(QueryProfile)
	// SlowQueryThreshold, when positive, records every query whose
	// end-to-end time reaches it into the structured slow-query log
	// (db.SlowQueries(), /debug/slow): query text, plan fingerprint,
	// per-phase breakdown, worst cardinality misestimate, per-query cache
	// and index attribution, and the memory high-water mark. Setting it
	// forces full profiling per query even when Observability is off.
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the retained slow-query records (default 128).
	SlowQueryLogSize int
	// SlowQueryWriter, when set, additionally receives every slow-query
	// record as one JSON line (point it at a log file).
	SlowQueryWriter io.Writer
	// TraceMorsels samples per-morsel event spans into observed query
	// profiles for Chrome trace export (/debug/trace, db.TraceJSON): every
	// Nth observed query records one span per scan-driver invocation
	// (0 = off, the default; EXPLAIN ANALYZE runs always record them).
	TraceMorsels int
	// PlanFeedbackSize bounds the per-plan-fingerprint runtime feedback
	// store (db.PlanFeedback(), /debug/plans) in tracked plans (0 = default
	// 256; negative disables the store).
	PlanFeedbackSize int
	// QueryTimeout bounds each query's wall time across the whole life-cycle
	// (0 = no timeout). Expired queries fail with context.DeadlineExceeded.
	QueryTimeout time.Duration
	// QueryMemBudget caps the bytes one query may pin in operator state —
	// hash-join build sides, aggregation tables, ORDER BY buffers (0 =
	// unlimited). Exceeding it fails that query gracefully; the DB, its
	// caches, and other queries are unaffected.
	QueryMemBudget int64
	// MaxConcurrentQueries gates admission: queries beyond the limit wait
	// for a slot or for their context to be cancelled (0 = unlimited).
	MaxConcurrentQueries int
	// Vectorized selects the execution mode for eligible pipeline segments
	// (scan→filter chains over scalar columns feeding aggregates or
	// projections). VectorizedAuto (the default) uses batch kernels when
	// the input is large enough to amortize their setup; VectorizedOn and
	// VectorizedOff force one mode everywhere. Results are identical in
	// every mode — this knob trades compilation simplicity for throughput.
	Vectorized VecMode
	// PlanCacheSize bounds the compiled-plan cache in entries (0 = default
	// 64; negative disables plan caching). Repeated query texts skip the
	// parse→optimize→compile tail; entries are invalidated automatically
	// when the catalog or the adaptive cache contents change.
	PlanCacheSize int
	// ClusterWorkers, when non-empty, makes this instance a scatter/gather
	// coordinator over the listed worker base URLs ("http://host:port",
	// each a proteusd serving the same datasets): eligible queries are
	// partitioned into per-worker morsel ranges, executed remotely as
	// scan→filter→partial-aggregate fragments, and merged locally with the
	// same discipline in-process parallelism uses — results are identical
	// to single-node execution. Ineligible plans fall back to local
	// execution transparently.
	ClusterWorkers []string
	// ClusterFragmentTimeout bounds each remote fragment attempt
	// (0 = 30s default).
	ClusterFragmentTimeout time.Duration
	// ClusterHedgeAfter, when positive, launches a fragment's one retry
	// speculatively on the next worker once the primary has run this long;
	// the first complete response wins. 0 disables hedging.
	ClusterHedgeAfter time.Duration
}

// VecMode selects tuple-at-a-time vs. vectorized execution (see
// Config.Vectorized).
type VecMode = exec.VecMode

// Vectorized execution modes.
const (
	VectorizedAuto = exec.VecAuto
	VectorizedOn   = exec.VecOn
	VectorizedOff  = exec.VecOff
)

// IndexMode selects the cached-column bitmap-index policy (see
// Config.Indexes).
type IndexMode = cache.IndexMode

// Bitmap-index policies.
const (
	IndexesAuto = cache.IndexAuto
	IndexesOn   = cache.IndexOn
	IndexesOff  = cache.IndexOff
)

// DB is a Proteus engine instance: a catalog of registered datasets plus
// the managers (memory, caching, statistics) queries compile against.
type DB struct {
	eng *engine.Engine
}

// Result is a materialized query result.
type Result = exec.Result

// QueryProfile is the observability record of one query: phase spans
// (parse → calculus → optimize → compile → execute), the parallel shape,
// and the per-operator profile tree.
type QueryProfile = obs.QueryProfile

// MetricsSnapshot is a point-in-time copy of the engine's cumulative
// counters, including per-phase latency summaries with p50/p95/p99.
type MetricsSnapshot = obs.Snapshot

// SlowQuery is one structured slow-query-log record (see
// Config.SlowQueryThreshold).
type SlowQuery = obs.SlowQuery

// PlanStats is one plan fingerprint's accumulated runtime feedback:
// executions, mean/stddev of total time, per-phase means, and observed
// tuple-vs-vectorized throughput.
type PlanStats = obs.PlanStats

// Value is the engine's datum representation (nested records, collections,
// scalars).
type Value = types.Value

// Schema describes a flat or nested record type.
type Schema = types.RecordType

// Field is one schema field.
type Field = types.Field

// Scalar types for schema construction.
var (
	Int    = types.Int
	Float  = types.Float
	Bool   = types.Bool
	String = types.String
)

// ListOf builds a collection type for nested schemas.
func ListOf(elem types.Type) types.Type { return types.NewListType(elem) }

// Open creates a DB with the standard CSV, JSON, and binary plug-ins.
func Open(cfg Config) *DB {
	var coord *cluster.Coordinator
	if len(cfg.ClusterWorkers) > 0 {
		coord = cluster.New(cluster.Config{
			Workers:         cfg.ClusterWorkers,
			FragmentTimeout: cfg.ClusterFragmentTimeout,
			HedgeAfter:      cfg.ClusterHedgeAfter,
		})
	}
	return &DB{eng: engine.New(engine.Config{
		CacheEnabled:    cfg.CacheEnabled,
		CacheBudget:     cfg.CacheBudget,
		CacheStrings:    cfg.CacheStrings,
		Indexes:         cfg.Indexes,
		SampleEvery:     cfg.SampleEvery,
		Parallelism:     cfg.Parallelism,
		Observability:   cfg.Observability,
		ProfileRingSize: cfg.ProfileRingSize,
		OnQueryDone:     cfg.OnQueryDone,

		SlowQueryThreshold: cfg.SlowQueryThreshold,
		SlowQueryLogSize:   cfg.SlowQueryLogSize,
		SlowQueryWriter:    cfg.SlowQueryWriter,
		TraceMorsels:       cfg.TraceMorsels,
		PlanFeedbackSize:   cfg.PlanFeedbackSize,

		QueryTimeout:         cfg.QueryTimeout,
		QueryMemBudget:       cfg.QueryMemBudget,
		MaxConcurrentQueries: cfg.MaxConcurrentQueries,

		Vectorized:    cfg.Vectorized,
		PlanCacheSize: cfg.PlanCacheSize,
		Cluster:       coord,
	})}
}

// CSVOptions tunes CSV registration.
type CSVOptions struct {
	Delimiter byte // default ','
	Header    bool // first row holds column names
	// IndexStride is the positional structural index granularity: the byte
	// position of every Nth field of each row is kept (default 8).
	IndexStride int
}

// RegisterCSV registers a CSV file. With a nil schema, column types are
// inferred from the first data row. Registration performs the cold pass:
// the positional structural index is built (or dropped entirely if the file
// turns out to be fixed-width) and statistics are sampled.
func (db *DB) RegisterCSV(name, path string, schema *Schema, opts ...CSVOptions) error {
	var o CSVOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return db.eng.Register(name, path, "csv", schema, plugin.Options{
		Delimiter:   o.Delimiter,
		Header:      o.Header,
		IndexStride: o.IndexStride,
	})
}

// RegisterJSON registers a JSON file (newline-delimited objects or one
// top-level array of objects). The cold pass validates the input and builds
// the two-level structural index; if every object carries the same fields
// in the same order, Level 0 is dropped for the compressed deterministic
// form. The schema is inferred from the first object.
func (db *DB) RegisterJSON(name, path string) error {
	return db.eng.Register(name, path, "json", nil, plugin.Options{})
}

// RegisterBinary registers a relational binary file in this module's
// row-major or column-major format (see proteus/internal/plugin/binpg for
// the writer used by data generation pipelines).
func (db *DB) RegisterBinary(name, path string) error {
	return db.eng.Register(name, path, "bin", nil, plugin.Options{})
}

// RegisterInMemory registers raw bytes as a dataset without touching disk.
func (db *DB) RegisterInMemory(name string, data []byte, format string, schema *Schema) error {
	path := "mem://" + name
	db.eng.Mem().PutFile(path, data)
	return db.eng.Register(name, path, format, schema, plugin.Options{})
}

// Drop removes a dataset and every cache derived from it.
func (db *DB) Drop(name string) { db.eng.Drop(name) }

// Query parses, optimizes, compiles, and runs a SQL statement. A fresh
// specialized engine implementation is generated for the query (closure
// compilation — the Go analogue of the paper's LLVM code generation).
// Supported: SELECT (expressions, aggregates), FROM with aliases and
// JOIN…ON, WHERE, GROUP BY, ORDER BY <output column> [DESC], LIMIT.
func (db *DB) Query(sql string) (*Result, error) { return db.eng.QuerySQL(sql) }

// QueryComprehension runs a monoid-comprehension query:
//
//	for { x <- Dataset, y <- x.nested, predicate, ... } yield bag (e1, e2)
//
// Yield monoids: bag, list, sum, max, min, avg, count.
func (db *DB) QueryComprehension(comp string) (*Result, error) { return db.eng.QueryComp(comp) }

// QueryContext runs a query (SQL or comprehension, detected by the leading
// `for`) under the caller's context. Cancellation is cooperative: compiled
// scan loops poll between strides, pipeline phases check between vectors,
// and the life-cycle checks between phases — a cancelled query returns
// context.Canceled (or the cause) within milliseconds, and the DB stays
// fully usable.
func (db *DB) QueryContext(ctx context.Context, query string) (*Result, error) {
	if IsComprehension(query) {
		return db.eng.QueryCompContext(ctx, query)
	}
	return db.eng.QuerySQLContext(ctx, query)
}

// ExecContext runs a query for its side effects (cache population,
// statistics), discarding the result rows.
func (db *DB) ExecContext(ctx context.Context, query string) error {
	_, err := db.QueryContext(ctx, query)
	return err
}

// ErrClosed is returned for queries submitted after Close.
var ErrClosed = engine.ErrClosed

// Close drains the DB: new queries are rejected with ErrClosed immediately,
// queries already in flight run to completion, and Close returns once the
// engine is idle — or with ctx's cause when the deadline passes first
// (in-flight queries are not cancelled by the deadline; run them under
// cancellable contexts for a hard stop). Close is idempotent. The query
// service calls this during graceful shutdown, after the HTTP listener has
// stopped accepting work.
func (db *DB) Close(ctx context.Context) error { return db.eng.Close(ctx) }

// WithQueryTag attaches a correlation tag (e.g. an HTTP request ID) to a
// query context. Observed queries copy the tag into their QueryProfile and
// slow-query-log record, so one service request can be traced from access
// log to profile (/debug/queries) to slow record (/debug/slow).
func WithQueryTag(ctx context.Context, tag string) context.Context {
	return engine.WithQueryTag(ctx, tag)
}

// IsComprehension reports whether a query string is in the monoid
// comprehension language (it starts with the `for` keyword) rather than
// SQL. Query front doors use it to route mixed input.
func IsComprehension(query string) bool {
	q := strings.TrimSpace(query)
	return len(q) >= 3 && strings.EqualFold(q[:3], "for") &&
		(len(q) == 3 || q[3] == ' ' || q[3] == '\t' || q[3] == '\n' || q[3] == '{')
}

// Explain returns the optimized plan and per-query compilation decisions
// (cache hits, lazy unnests, …) without running the query. Both SQL and
// comprehension queries are accepted; comprehensions are detected by their
// leading `for`.
func (db *DB) Explain(query string) (string, error) {
	p, err := db.prepare(query)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

func (db *DB) prepare(query string) (*engine.Prepared, error) {
	if IsComprehension(query) {
		return db.eng.PrepareComp(query)
	}
	return db.eng.PrepareSQL(query)
}

// ExplainAnalyze executes the query (SQL or comprehension) with full
// per-operator instrumentation — row counts, batches, estimated vs. actual
// cardinalities, and per-operator wall time — and renders the profile:
//
//	out, err := db.ExplainAnalyze(`SELECT COUNT(*) FROM people p
//	                               JOIN events e ON p.id = e.pid`)
//	fmt.Println(out)
func (db *DB) ExplainAnalyze(query string) (string, error) {
	_, qp, err := db.ExplainAnalyzeProfile(query)
	if err != nil {
		return "", err
	}
	return obs.RenderProfile(qp), nil
}

// ExplainAnalyzeProfile is ExplainAnalyze returning the raw result and
// structured profile instead of rendered text.
func (db *DB) ExplainAnalyzeProfile(query string) (*Result, *QueryProfile, error) {
	if IsComprehension(query) {
		return db.eng.ExplainAnalyzeComp(query)
	}
	return db.eng.ExplainAnalyzeSQL(query)
}

// RenderProfile renders a query profile as the EXPLAIN ANALYZE text: phase
// timings, the parallel shape, and the operator tree with actual vs.
// estimated cardinalities.
func RenderProfile(q *QueryProfile) string { return obs.RenderProfile(q) }

// RenderSlowQuery renders one slow-query log record as human-readable text:
// the per-phase breakdown, worst cardinality misestimate, and per-query
// cache/index attribution.
func RenderSlowQuery(s *SlowQuery) string { return obs.RenderSlowQuery(s) }

// Metrics snapshots the engine's cumulative counters: queries, per-phase
// wall time, parallelism, scan plug-in totals, and cache activity.
func (db *DB) Metrics() MetricsSnapshot { return db.eng.Metrics() }

// RecentProfiles returns retained query profiles, newest first (requires
// Config.Observability, or EXPLAIN ANALYZE runs, to populate the ring).
func (db *DB) RecentProfiles() []*QueryProfile { return db.eng.RecentProfiles() }

// SlowQueries returns the retained slow-query log records, newest first
// (nil unless Config.SlowQueryThreshold is set).
func (db *DB) SlowQueries() []*SlowQuery { return db.eng.SlowQueries() }

// PlanFeedback returns the per-plan runtime feedback store's tracked
// stats, most-executed first.
func (db *DB) PlanFeedback() []PlanStats { return db.eng.PlanFeedback() }

// TraceJSON renders a retained query profile (id ≤ 0: the newest) as
// Chrome trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. ok is false when the ring holds no matching profile.
func (db *DB) TraceJSON(id int64) (data []byte, ok bool) { return db.eng.TraceJSON(id) }

// MetricsHandler returns the opt-in HTTP observability surface:
//
//	go http.ListenAndServe("localhost:6060", db.MetricsHandler())
//
// Routes: /metrics (Prometheus text, incl. latency histograms),
// /debug/vars (expvar-style JSON), /debug/queries (recent profiles as
// JSON), /debug/trace?id=N (Chrome trace-event export), /debug/slow
// (slow-query log), /debug/plans (per-plan feedback), /debug/pprof/*.
func (db *DB) MetricsHandler() http.Handler { return db.eng.MetricsHandler() }

// CacheStats reports the adaptive cache state.
func (db *DB) CacheStats() cache.Stats { return db.eng.Caches().Snapshot() }

// StartStatsDaemon launches the paper's idle statistics daemon (§5.2): a
// background goroutine that periodically runs MIN/MAX statistics-gathering
// queries for numeric attributes that still lack range statistics. Call the
// returned function to stop it.
func (db *DB) StartStatsDaemon(interval time.Duration) (stop func()) {
	return db.eng.StartStatsDaemon(interval)
}

// GatherStatsOnce runs one statistics-gathering sweep synchronously.
func (db *DB) GatherStatsOnce() { db.eng.GatherStatsOnce() }

// Engine exposes the underlying engine for advanced integration (custom
// plug-ins via RegisterPlugin, direct plan execution).
func (db *DB) Engine() *engine.Engine { return db.eng }
