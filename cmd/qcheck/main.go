// Command qcheck runs the differential + metamorphic query fuzzing harness
// (internal/qcheck) standalone: random universes and queries from a seed,
// executed across the full engine-config matrix and cross-checked against
// the Volcano oracle. It exits 1 when any divergence is found, so it can
// gate CI.
//
//	qcheck                                # default budget, seed 1
//	qcheck -seed 42 -universes 20 -queries 100
//	qcheck -useed 1234567 -case 17        # replay one reported case
package main

import (
	"flag"
	"fmt"
	"os"

	"proteus/internal/qcheck"
)

func main() {
	seed := flag.Int64("seed", 1, "master seed; each universe derives its own seed from it")
	universes := flag.Int("universes", 0, "universes to generate (0 = harness default)")
	queries := flag.Int("queries", 0, "query cases per universe (0 = harness default)")
	useed := flag.Int64("useed", 0, "replay a single universe by its derived seed (as printed in a divergence)")
	caseIdx := flag.Int("case", -1, "with -useed: replay only this case index (-1 = all)")
	maxDiv := flag.Int("maxdiv", 0, "max divergences to report (0 = harness default)")
	noShrink := flag.Bool("noshrink", false, "skip divergence minimization")
	verbose := flag.Bool("v", false, "log divergences as they are found")
	flag.Parse()

	opts := qcheck.Options{
		Seed:           *seed,
		Universes:      *universes,
		Queries:        *queries,
		UniverseSeed:   *useed,
		Case:           *caseIdx,
		MaxDivergences: *maxDiv,
		NoShrink:       *noShrink,
	}
	if *verbose {
		opts.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	rep, err := qcheck.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qcheck: %v\n", err)
		os.Exit(2)
	}
	fmt.Println(qcheck.FormatReport(rep))
	if len(rep.Divergences) > 0 {
		os.Exit(1)
	}
}
