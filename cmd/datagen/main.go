// Command datagen writes the synthetic datasets of the evaluation to disk:
// the TPC-H subset (CSV, JSON, denormalized JSON, binary columnar) and the
// spam-telemetry workload stand-in (JSON feed, CSV classification output,
// binary history table).
//
//	datagen -out data -sf 0.01            # TPC-H subset at SF 0.01
//	datagen -out data -spam 20000         # spam datasets, 20k JSON objects
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"proteus/internal/bench"
)

func main() {
	out := flag.String("out", "data", "output directory")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor (1.0 = 6M lineitems); 0 skips")
	spam := flag.Int("spam", 0, "spam workload scale (JSON object count); 0 skips")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *sf > 0 {
		t := bench.GenTPCH(*sf)
		files := map[string][]byte{
			"lineitem.csv":       t.LineitemCSV,
			"orders.csv":         t.OrdersCSV,
			"lineitem.json":      t.LineitemJSON,
			"orders.json":        t.OrdersJSON,
			"orders_denorm.json": t.DenormJSON,
			"lineitem.bin":       t.LineitemBin,
			"orders.bin":         t.OrdersBin,
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", name, len(data))
		}
		fmt.Printf("TPC-H SF %g: %d lineitems, %d orders\n", *sf, t.LineitemRows, t.OrdersRows)
	}
	if *spam > 0 {
		s := bench.GenSpam(*spam)
		files := map[string][]byte{
			"spam.json": s.JSON,
			"spam.csv":  s.CSV,
			"spam.bin":  s.Bin,
		}
		for name, data := range files {
			if err := os.WriteFile(filepath.Join(*out, name), data, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", name, len(data))
		}
		fmt.Printf("spam: %d JSON objects, %d CSV rows, %d binary rows\n",
			s.JSONObjs, s.CSVRows, s.BinRows)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
