// Command benchrunner regenerates every table and figure of the paper's
// evaluation (§7): Figures 5–12 (projection / selection / join / group-by
// templates over JSON and binary data at 10–100% selectivity, against the
// three baseline engines), Figure 13 (adaptive-caching speedup), and
// Figure 14 + Table 3 (the 50-query spam workload on three system stacks).
//
//	benchrunner                      # everything, laptop scale
//	benchrunner -exp fig9 -sf 0.05   # one figure, bigger data
//	benchrunner -exp tab3 -spam 50000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"proteus/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5..fig14, figpar, tab3, or all")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for fig5–fig13")
	spam := flag.Int("spam", 10000, "spam scale (JSON objects) for fig14/tab3")
	raw := flag.Bool("raw", false, "also print machine-readable rows")
	flag.Parse()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	var allRows []bench.Row

	tpchFigs := []struct {
		name  string
		title string
		run   func(*bench.TPCHFixture) ([]bench.Row, error)
	}{
		{"fig5", "Figure 5: projection-intensive queries over JSON data", bench.Fig5},
		{"fig6", "Figure 6: projection-intensive queries over binary relational data", bench.Fig6},
		{"fig7", "Figure 7: selection queries over JSON data", bench.Fig7},
		{"fig8", "Figure 8: selection queries over binary relational data", bench.Fig8},
		{"fig9", "Figure 9: join and unnest queries over JSON data", bench.Fig9},
		{"fig10", "Figure 10: join queries over binary relational data", bench.Fig10},
		{"fig11", "Figure 11: aggregate queries over JSON data", bench.Fig11},
		{"fig12", "Figure 12: aggregate queries over binary relational data", bench.Fig12},
	}
	needTPCH := false
	for _, f := range tpchFigs {
		if want(f.name) {
			needTPCH = true
		}
	}
	if needTPCH {
		fmt.Printf("generating TPC-H subset at SF %g ...\n", *sf)
		fixture, err := bench.NewTPCHFixture(*sf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lineitem: %d rows, orders: %d rows\n\n",
			fixture.Data.LineitemRows, fixture.Data.OrdersRows)
		for _, f := range tpchFigs {
			if !want(f.name) {
				continue
			}
			rows, err := f.run(fixture)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", f.name, err))
			}
			bench.PrintFigure(os.Stdout, f.title, rows)
			allRows = append(allRows, rows...)
		}
	}

	if want("fig13") {
		rows, err := bench.Fig13(*sf)
		if err != nil {
			fatal(fmt.Errorf("fig13: %w", err))
		}
		bench.PrintFigure(os.Stdout, "Figure 13: effect of caching (seconds)", rows)
		bench.PrintSpeedups(os.Stdout, rows)
		allRows = append(allRows, rows...)
	}

	if want("figpar") {
		fmt.Printf("parallel sweep (%s) ...\n", bench.ParallelHostNote())
		rows, err := bench.FigParallel(*sf)
		if err != nil {
			fatal(fmt.Errorf("figpar: %w", err))
		}
		bench.PrintFigure(os.Stdout, "Parallel sweep: morsel workers 1/2/4 (seconds)", rows)
		allRows = append(allRows, rows...)
	}

	if want("fig14") || want("tab3") {
		fmt.Printf("running spam workload (%d JSON objects) ...\n", *spam)
		rep, err := bench.RunSpam(*spam)
		if err != nil {
			fatal(fmt.Errorf("spam workload: %w", err))
		}
		bench.PrintSpam(os.Stdout, rep)
		allRows = append(allRows, rep.Rows...)
	}

	if *raw {
		fmt.Println(strings.TrimSpace(bench.FormatRows(allRows)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
