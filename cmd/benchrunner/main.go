// Command benchrunner regenerates every table and figure of the paper's
// evaluation (§7): Figures 5–12 (projection / selection / join / group-by
// templates over JSON and binary data at 10–100% selectivity, against the
// three baseline engines), Figure 13 (adaptive-caching speedup), and
// Figure 14 + Table 3 (the 50-query spam workload on three system stacks).
//
//	benchrunner                      # everything, laptop scale
//	benchrunner -exp fig9 -sf 0.05   # one figure, bigger data
//	benchrunner -exp tab3 -spam 50000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"proteus/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig5..fig14, figpar, vec, vec2, idx, obs, tab3, or all")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for fig5–fig13")
	spam := flag.Int("spam", 10000, "spam scale (JSON objects) for fig14/tab3")
	raw := flag.Bool("raw", false, "also print machine-readable rows")
	jsonOut := flag.String("json", "BENCH_PR2.json", "write a machine-readable report to this path (empty disables)")
	iters := flag.Int("iters", 5, "runs per query for phase-split and overhead medians")
	obsBudget := flag.Float64("obs-budget", 0, "fail (exit 1) if the obs experiment's overhead ratio exceeds this (0 = report only)")
	vec2Tolerance := flag.Float64("vec2-tolerance", 0, "fail (exit 1) if vec2 adaptive mode exceeds this multiple of the best static mode on any query (0 = report only)")
	flag.Parse()

	want := func(name string) bool { return *exp == "all" || *exp == name }
	var allRows []bench.Row
	var phaseRows []bench.PhaseRow
	obsOverhead := 0.0
	var vec2Rows []bench.Row

	tpchFigs := []struct {
		name  string
		title string
		run   func(*bench.TPCHFixture) ([]bench.Row, error)
	}{
		{"fig5", "Figure 5: projection-intensive queries over JSON data", bench.Fig5},
		{"fig6", "Figure 6: projection-intensive queries over binary relational data", bench.Fig6},
		{"fig7", "Figure 7: selection queries over JSON data", bench.Fig7},
		{"fig8", "Figure 8: selection queries over binary relational data", bench.Fig8},
		{"fig9", "Figure 9: join and unnest queries over JSON data", bench.Fig9},
		{"fig10", "Figure 10: join queries over binary relational data", bench.Fig10},
		{"fig11", "Figure 11: aggregate queries over JSON data", bench.Fig11},
		{"fig12", "Figure 12: aggregate queries over binary relational data", bench.Fig12},
	}
	needTPCH := false
	for _, f := range tpchFigs {
		if want(f.name) {
			needTPCH = true
		}
	}
	if needTPCH {
		fmt.Printf("generating TPC-H subset at SF %g ...\n", *sf)
		fixture, err := bench.NewTPCHFixture(*sf)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lineitem: %d rows, orders: %d rows\n\n",
			fixture.Data.LineitemRows, fixture.Data.OrdersRows)
		for _, f := range tpchFigs {
			if !want(f.name) {
				continue
			}
			rows, err := f.run(fixture)
			if err != nil {
				fatal(fmt.Errorf("%s: %w", f.name, err))
			}
			bench.PrintFigure(os.Stdout, f.title, rows)
			allRows = append(allRows, rows...)
		}
		if *jsonOut != "" {
			var err error
			phaseRows, err = bench.PhaseSplit(fixture, *iters)
			if err != nil {
				fatal(fmt.Errorf("phase split: %w", err))
			}
			obsOverhead, err = bench.ObsOverhead(*sf, *iters)
			if err != nil {
				fatal(fmt.Errorf("observability overhead: %w", err))
			}
			fmt.Printf("observability overhead: %.3fx (budget < 1.05x)\n\n", obsOverhead)
		}
	}

	if want("fig13") {
		rows, err := bench.Fig13(*sf)
		if err != nil {
			fatal(fmt.Errorf("fig13: %w", err))
		}
		bench.PrintFigure(os.Stdout, "Figure 13: effect of caching (seconds)", rows)
		bench.PrintSpeedups(os.Stdout, rows)
		allRows = append(allRows, rows...)
	}

	if want("figpar") {
		fmt.Printf("parallel sweep (%s) ...\n", bench.ParallelHostNote())
		rows, err := bench.FigParallel(*sf)
		if err != nil {
			fatal(fmt.Errorf("figpar: %w", err))
		}
		bench.PrintFigure(os.Stdout, "Parallel sweep: morsel workers 1/2/4 (seconds)", rows)
		allRows = append(allRows, rows...)
	}

	if want("vec") {
		fmt.Println("vectorized vs tuple execution sweep ...")
		rows, err := bench.FigVec(*iters)
		if err != nil {
			fatal(fmt.Errorf("vec: %w", err))
		}
		bench.PrintVec(os.Stdout, rows)
		allRows = append(allRows, rows...)
	}

	if want("vec2") {
		fmt.Println("vectorized joins / ORDER BY / string predicates + adaptive mode sweep ...")
		rows, err := bench.FigVec2(*iters)
		if err != nil {
			fatal(fmt.Errorf("vec2: %w", err))
		}
		bench.PrintVec2(os.Stdout, rows)
		allRows = append(allRows, rows...)
		vec2Rows = rows
	}

	if want("idx") {
		fmt.Println("bitmap index vs compare-kernel sweep ...")
		rows, err := bench.FigIdx(*iters)
		if err != nil {
			fatal(fmt.Errorf("idx: %w", err))
		}
		bench.PrintIdx(os.Stdout, rows)
		allRows = append(allRows, rows...)
	}

	if want("obs") {
		// Standalone observability-overhead experiment: the full v2 stack
		// (profiles, histograms, slow log at 1ns threshold, plan feedback)
		// vs. a bare engine. CI runs this with -obs-budget 1.05.
		fmt.Println("observability v2 overhead sweep ...")
		ratio, err := bench.ObsOverheadV2(*sf, *iters)
		if err != nil {
			fatal(fmt.Errorf("obs: %w", err))
		}
		obsOverhead = ratio
		fmt.Printf("observability v2 overhead: %.3fx (budget < 1.05x)\n\n", ratio)
	}

	if want("fig14") || want("tab3") {
		fmt.Printf("running spam workload (%d JSON objects) ...\n", *spam)
		rep, err := bench.RunSpam(*spam)
		if err != nil {
			fatal(fmt.Errorf("spam workload: %w", err))
		}
		bench.PrintSpam(os.Stdout, rep)
		allRows = append(allRows, rep.Rows...)
	}

	if *raw {
		fmt.Println(strings.TrimSpace(bench.FormatRows(allRows)))
	}
	if *jsonOut != "" {
		if err := writeJSONReport(*jsonOut, *sf, *spam, allRows, phaseRows, obsOverhead); err != nil {
			fatal(fmt.Errorf("writing %s: %w", *jsonOut, err))
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	// The budget gates run last so the JSON artifact is written even on a
	// failing run (CI keeps the evidence).
	if *obsBudget > 0 && obsOverhead > *obsBudget {
		fatal(fmt.Errorf("obs: overhead ratio %.3f exceeds budget %.2f", obsOverhead, *obsBudget))
	}
	if *vec2Tolerance > 0 && len(vec2Rows) > 0 {
		if err := bench.Vec2Gate(vec2Rows, *vec2Tolerance); err != nil {
			fatal(err)
		}
	}
}

// figureSummary is one figure's per-system median runtime.
type figureSummary struct {
	MedianSeconds map[string]float64 `json:"median_seconds_by_system"`
	Rows          int                `json:"rows"`
}

// jsonReport is the machine-readable benchmark artifact.
type jsonReport struct {
	ScaleFactor float64                  `json:"scale_factor"`
	SpamObjects int                      `json:"spam_objects"`
	Figures     map[string]figureSummary `json:"figures"`
	PhaseSplit  []bench.PhaseRow         `json:"phase_split,omitempty"`
	ObsOverhead float64                  `json:"obs_overhead_ratio,omitempty"`
	Rows        []rowJSON                `json:"rows"`
}

// rowJSON mirrors bench.Row with stable JSON field names.
type rowJSON struct {
	Exp     string  `json:"exp"`
	Query   string  `json:"query"`
	System  string  `json:"system"`
	Sel     int     `json:"selectivity_pct"`
	Seconds float64 `json:"seconds"`
}

func writeJSONReport(path string, sf float64, spam int, rows []bench.Row, phases []bench.PhaseRow, overhead float64) error {
	rep := jsonReport{
		ScaleFactor: sf,
		SpamObjects: spam,
		Figures:     map[string]figureSummary{},
		PhaseSplit:  phases,
		ObsOverhead: overhead,
	}
	bySystem := map[string]map[string][]float64{}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, rowJSON{Exp: r.Exp, Query: r.Query, System: r.System, Sel: r.Sel, Seconds: r.Seconds})
		m := bySystem[r.Exp]
		if m == nil {
			m = map[string][]float64{}
			bySystem[r.Exp] = m
		}
		m[r.System] = append(m[r.System], r.Seconds)
	}
	for exp, systems := range bySystem {
		sum := figureSummary{MedianSeconds: map[string]float64{}}
		for sys, times := range systems {
			sort.Float64s(times)
			sum.MedianSeconds[sys] = times[(len(times)-1)/2]
			sum.Rows += len(times)
		}
		rep.Figures[exp] = sum
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchrunner:", err)
	os.Exit(1)
}
