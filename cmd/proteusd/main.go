// Command proteusd serves a Proteus engine over HTTP: register datasets
// with flags, then point clients at the query service.
//
// Usage:
//
//	proteusd -addr localhost:8080 \
//	         -csv sales=data/sales.csv -json events=data/events.json \
//	         -max-queries 8 -mem-budget 268435456 \
//	         -tenant-max-queries 2 -tenant-mem-quota 536870912
//
//	curl -N -H 'X-Proteus-Tenant: acme' -d '{"query":"SELECT * FROM sales"}' \
//	     http://localhost:8080/v1/query
//
// Results stream back as NDJSON (a {"cols":...} header line, one JSON
// document per row, a {"rows":...} trailer); disconnecting mid-stream
// cancels the query. POST /v1/prepare returns a handle executable via
// {"handle":"p-1"}. /metrics serves Prometheus text including per-tenant
// counters, and /debug/* exposes the engine observability surface
// (recent query profiles, traces, the slow-query log, pprof).
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, new queries are
// refused, in-flight streams finish (bounded by -drain-timeout), then the
// process exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"proteus"
	"proteus/internal/server"
)

type pairs []string

func (p *pairs) String() string     { return strings.Join(*p, ",") }
func (p *pairs) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var csvs, jsons, bins pairs
	flag.Var(&csvs, "csv", "register CSV dataset: name=path (repeatable)")
	flag.Var(&jsons, "json", "register JSON dataset: name=path (repeatable)")
	flag.Var(&bins, "bin", "register binary dataset: name=path (repeatable)")
	addr := flag.String("addr", "localhost:8080", "listen address for the query service")
	header := flag.Bool("header", false, "CSV files start with a header row")
	caching := flag.Bool("cache", true, "enable adaptive caching")
	par := flag.Int("par", 0, "morsel-parallel workers per query (0 = GOMAXPROCS, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-query wall-time limit, started after admission (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "per-query operator-state byte budget (0 = unlimited)")
	maxQueries := flag.Int("max-queries", 0, "engine-wide maximum concurrent queries (0 = unlimited)")
	tenantMax := flag.Int("tenant-max-queries", 0, "per-tenant concurrent-query cap; over-cap requests get 429 (0 = none)")
	tenantMem := flag.Int64("tenant-mem-quota", 0, "per-tenant reserved-memory quota in bytes, in units of -mem-budget (0 = none)")
	slowQuery := flag.Duration("slow-query", 0, "slow-query log threshold (0 = off)")
	chunkRows := flag.Int("chunk-rows", 0, "NDJSON flush granularity in rows (0 = default)")
	maxPrepared := flag.Int("max-prepared", 0, "prepared-statement handles retained, LRU-evicted (0 = default 256)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight queries")
	workers := flag.String("workers", "", "comma-separated worker base URLs; makes this node a cluster coordinator")
	join := flag.String("join", "", "coordinator base URL to join as a cluster worker")
	advertise := flag.String("advertise", "", "base URL advertised to the coordinator on -join (default http://<bound addr>)")
	fragmentTimeout := flag.Duration("fragment-timeout", 0, "per-fragment scatter deadline on the coordinator (0 = default 30s)")
	hedgeAfter := flag.Duration("hedge-after", 0, "launch a backup fragment on another worker after this delay (0 = off)")
	flag.Parse()

	if *tenantMem > 0 && *memBudget <= 0 {
		fatalf("-tenant-mem-quota requires -mem-budget to set the per-query reservation unit")
	}
	if *workers != "" && *join != "" {
		fatalf("-workers (coordinator) and -join (worker) are mutually exclusive")
	}
	var workerURLs []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workerURLs = append(workerURLs, u)
		}
	}

	db := proteus.Open(proteus.Config{
		CacheEnabled:  *caching,
		Parallelism:   *par,
		Observability: true, // the service is observable by default: /debug/queries needs profiles

		SlowQueryThreshold: *slowQuery,

		QueryTimeout:         *timeout,
		QueryMemBudget:       *memBudget,
		MaxConcurrentQueries: *maxQueries,

		ClusterWorkers:         workerURLs,
		ClusterFragmentTimeout: *fragmentTimeout,
		ClusterHedgeAfter:      *hedgeAfter,
	})

	register := func(list pairs, kind string) {
		for _, spec := range list {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				fatalf("bad -%s value %q, want name=path", kind, spec)
			}
			var err error
			switch kind {
			case "csv":
				err = db.RegisterCSV(name, path, nil, proteus.CSVOptions{Header: *header})
			case "json":
				err = db.RegisterJSON(name, path)
			case "bin":
				err = db.RegisterBinary(name, path)
			}
			if err != nil {
				fatalf("registering %s: %v", name, err)
			}
			fmt.Printf("registered %s (%s)\n", name, kind)
		}
	}
	register(csvs, "csv")
	register(jsons, "json")
	register(bins, "bin")

	svc := server.New(server.Config{
		DB:                  db,
		TenantMaxConcurrent: *tenantMax,
		TenantMemQuota:      *tenantMem,
		QueryMemBudget:      *memBudget,
		MaxPrepared:         *maxPrepared,
		ChunkRows:           *chunkRows,
	})

	// Bind synchronously so a bad -addr is a startup error, not a line on
	// stderr after the "serving" banner.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	httpSrv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Printf("proteusd serving on http://%s (POST /v1/query, /v1/prepare, /healthz, /metrics, /debug/)\n", ln.Addr())
	if len(workerURLs) > 0 {
		fmt.Printf("cluster coordinator over %d workers: %s\n", len(workerURLs), strings.Join(workerURLs, ", "))
	}
	if *join != "" {
		self := strings.TrimSpace(*advertise)
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		// Join in the background with retries: the coordinator may still be
		// starting. A worker that never joins still serves /v1/fragment, so
		// failure is a warning, not fatal.
		go joinCluster(*join, self)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("received %s, draining (up to %v)...\n", sig, *drainTimeout)
	case err := <-serveErr:
		fatalf("serve: %v", err)
	}

	// Drain order matters: stop admitting first (healthz 503, queries 503),
	// then let the HTTP server wait for in-flight streams, then drain the
	// engine itself so no query survives the process's intent to exit.
	svc.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "http shutdown:", err)
	}
	if err := svc.Close(ctx); err != nil && !errors.Is(err, proteus.ErrClosed) {
		fmt.Fprintln(os.Stderr, "engine drain:", err)
		os.Exit(1)
	}
	fmt.Println("drained; bye")
}

// joinCluster announces this worker's advertised URL to the coordinator's
// topology endpoint, retrying while the coordinator comes up.
func joinCluster(coordinator, self string) {
	body, _ := json.Marshal(struct {
		URL string `json:"url"`
	}{self})
	target := strings.TrimRight(coordinator, "/") + "/v1/cluster/join"
	var lastErr error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 500 * time.Millisecond)
		}
		resp, err := http.Post(target, "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusOK {
			resp.Body.Close()
			fmt.Printf("joined cluster at %s as %s\n", coordinator, self)
			return
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		lastErr = fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(msg)))
		// 4xx won't get better with retries (not a coordinator, bad URL).
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			break
		}
	}
	fmt.Fprintf(os.Stderr, "cluster join %s failed: %v\n", coordinator, lastErr)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
