// Command proteus is an interactive / one-shot query runner: register
// datasets with flags, then run SQL or comprehension queries against them.
//
// Usage:
//
//	proteus -csv sales=data/sales.csv -json events=data/events.json \
//	        -q "SELECT COUNT(*) FROM sales s JOIN events e ON s.id = e.sid"
//
// Without -q it reads queries from stdin, one per line; lines starting with
// "for" are parsed as comprehensions. Dot commands: ".explain <query>"
// prints the plan, ".explain analyze <query>" runs the query with full
// per-operator instrumentation, ".profile" shows the most recent query
// profile, ".trace [id] [file]" exports a profile as Chrome trace-event
// JSON (Perfetto-loadable), ".slow" prints the slow-query log, ".plans"
// prints per-plan runtime feedback, ".metrics" dumps cumulative engine
// metrics, and ".caches" prints cache statistics. The -obs flag records a
// profile for every query, -slow-query sets the slow-log threshold
// (-slow-log appends JSONL records to a file), -trace-morsels samples
// per-morsel trace events, and -metrics ADDR serves /metrics, /debug/vars,
// /debug/trace, /debug/slow, /debug/plans, and /debug/pprof over HTTP.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"proteus"
)

type pairs []string

func (p *pairs) String() string     { return strings.Join(*p, ",") }
func (p *pairs) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var csvs, jsons, bins pairs
	flag.Var(&csvs, "csv", "register CSV dataset: name=path (repeatable)")
	flag.Var(&jsons, "json", "register JSON dataset: name=path (repeatable)")
	flag.Var(&bins, "bin", "register binary dataset: name=path (repeatable)")
	query := flag.String("q", "", "one-shot query (SQL, or a comprehension starting with 'for')")
	caching := flag.Bool("cache", true, "enable adaptive caching")
	header := flag.Bool("header", false, "CSV files start with a header row")
	par := flag.Int("par", 0, "morsel-parallel workers per query (0 = GOMAXPROCS, 1 = serial)")
	obsOn := flag.Bool("obs", false, "record a profile for every query (.profile shows the latest)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /debug/vars, /debug/pprof on this address (e.g. localhost:6060)")
	profileRing := flag.Int("profile-ring", 0, "retained recent-query profiles (0 = default 32)")
	slowQuery := flag.Duration("slow-query", 0, "slow-query log threshold; queries at or above it are recorded (.slow, /debug/slow; 0 = off)")
	slowLog := flag.String("slow-log", "", "append slow-query records as JSON lines to this file")
	traceMorsels := flag.Int("trace-morsels", 0, "record per-morsel trace events on every Nth observed query (0 = off)")
	timeout := flag.Duration("timeout", 0, "per-query wall-time limit (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "per-query operator-state byte budget (0 = unlimited)")
	maxQueries := flag.Int("max-queries", 0, "maximum concurrent queries (0 = unlimited)")
	vectorized := flag.String("vectorized", "auto", "execution mode for eligible segments: auto, on, or off")
	indexes := flag.String("indexes", "auto", "bitmap indexes over cached columns: auto, on, or off")
	planCache := flag.Int("plan-cache", 0, "compiled-plan cache entries (0 = default 64, negative disables)")
	flag.Parse()

	var vecMode proteus.VecMode
	switch *vectorized {
	case "auto":
		vecMode = proteus.VectorizedAuto
	case "on":
		vecMode = proteus.VectorizedOn
	case "off":
		vecMode = proteus.VectorizedOff
	default:
		fatalf("bad -vectorized value %q, want auto, on, or off", *vectorized)
	}

	var idxMode proteus.IndexMode
	switch *indexes {
	case "auto":
		idxMode = proteus.IndexesAuto
	case "on":
		idxMode = proteus.IndexesOn
	case "off":
		idxMode = proteus.IndexesOff
	default:
		fatalf("bad -indexes value %q, want auto, on, or off", *indexes)
	}

	var slowSink *os.File
	if *slowLog != "" {
		var err error
		slowSink, err = os.OpenFile(*slowLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatalf("opening -slow-log file: %v", err)
		}
		defer slowSink.Close()
		if *slowQuery == 0 {
			fatalf("-slow-log requires -slow-query to set the threshold")
		}
	}

	cfg := proteus.Config{
		CacheEnabled:    *caching,
		Indexes:         idxMode,
		Parallelism:     *par,
		Observability:   *obsOn,
		ProfileRingSize: *profileRing,

		SlowQueryThreshold: *slowQuery,
		TraceMorsels:       *traceMorsels,

		QueryTimeout:         *timeout,
		QueryMemBudget:       *memBudget,
		MaxConcurrentQueries: *maxQueries,

		Vectorized:    vecMode,
		PlanCacheSize: *planCache,
	}
	if slowSink != nil {
		cfg.SlowQueryWriter = slowSink
	}
	db := proteus.Open(cfg)

	// Ctrl-C cancels the running query, not the REPL: the handler below
	// forwards the signal to the active query's context. A second Ctrl-C
	// while idle is harmless (the buffered stdin read restarts).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	if *metricsAddr != "" {
		// Bind synchronously so a bad address (in use, unresolvable) fails
		// startup instead of printing "serving metrics" and then losing the
		// error to stderr from a goroutine.
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatalf("metrics listener: %v", err)
		}
		metricsSrv := &http.Server{
			Handler:           db.MetricsHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := metricsSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "metrics listener:", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = metricsSrv.Shutdown(ctx)
		}()
		fmt.Printf("serving metrics on http://%s/metrics\n", ln.Addr())
	}
	register := func(list pairs, kind string) {
		for _, spec := range list {
			name, path, ok := strings.Cut(spec, "=")
			if !ok {
				fatalf("bad -%s value %q, want name=path", kind, spec)
			}
			var err error
			switch kind {
			case "csv":
				err = db.RegisterCSV(name, path, nil, proteus.CSVOptions{Header: *header})
			case "json":
				err = db.RegisterJSON(name, path)
			case "bin":
				err = db.RegisterBinary(name, path)
			}
			if err != nil {
				fatalf("registering %s: %v", name, err)
			}
			fmt.Printf("registered %s (%s)\n", name, kind)
		}
	}
	register(csvs, "csv")
	register(jsons, "json")
	register(bins, "bin")

	if *query != "" {
		runQuery(db, *query, sigc)
		return
	}
	fmt.Println("proteus> enter queries (SQL or 'for {...} yield ...'); .explain [analyze] <query>, .profile, .trace [id] [file], .slow, .plans, .metrics, .caches, .quit")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("proteus> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == ".quit" || line == ".exit":
			return
		case line == ".caches":
			s := db.CacheStats()
			fmt.Printf("blocks=%d join_sides=%d bytes=%d hits=%d misses=%d evictions=%d build_time=%v\n",
				s.Blocks, s.JoinSides, s.Bytes, s.Hits, s.Misses, s.Evictions,
				time.Duration(s.BuildNanos).Round(time.Microsecond))
			fmt.Printf("indexes=%d index_bytes=%d index_builds=%d index_hits=%d zone_skips=%d\n",
				s.Indexes, s.IndexBytes, s.IndexBuilds, s.IndexHits, s.ZoneSkips)
		case line == ".metrics":
			out, err := json.MarshalIndent(db.Metrics(), "", "  ")
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(string(out))
		case line == ".profile":
			profs := db.RecentProfiles()
			if len(profs) == 0 {
				fmt.Println("no profiles recorded (run with -obs, or use .explain analyze <query>)")
				continue
			}
			fmt.Print(proteus.RenderProfile(profs[0]))
		case line == ".trace" || strings.HasPrefix(line, ".trace "):
			traceCmd(db, strings.TrimSpace(strings.TrimPrefix(line, ".trace")))
		case line == ".slow":
			slow := db.SlowQueries()
			if len(slow) == 0 {
				fmt.Println("no slow queries recorded (run with -slow-query <threshold>)")
				continue
			}
			for _, s := range slow {
				fmt.Print(proteus.RenderSlowQuery(s))
			}
		case line == ".plans":
			plans := db.PlanFeedback()
			if len(plans) == 0 {
				fmt.Println("no plan feedback recorded yet")
				continue
			}
			for _, p := range plans {
				fmt.Printf("%s  execs=%d errs=%d rows=%d mean=%v stddev=%v\n",
					p.Fingerprint, p.Executions, p.Errors, p.Rows,
					time.Duration(p.MeanNanos).Round(time.Microsecond),
					time.Duration(p.StddevNanos).Round(time.Microsecond))
				fmt.Printf("    %s\n", p.Query)
				if p.Tuple.Runs > 0 {
					fmt.Printf("    tuple: runs=%d rows/s=%.0f\n", p.Tuple.Runs, p.Tuple.RowsPerSec())
				}
				if p.Vectorized.Runs > 0 {
					fmt.Printf("    vectorized: runs=%d rows/s=%.0f\n", p.Vectorized.Runs, p.Vectorized.RowsPerSec())
				}
				if p.Mode != "" {
					ineligible := ""
					if p.VecIneligible {
						ineligible = ", vec-ineligible"
					}
					fmt.Printf("    mode: %s (%s%s)\n", p.Mode, p.ModeSource, ineligible)
				}
			}
		case strings.HasPrefix(line, ".explain analyze "):
			out, err := db.ExplainAnalyze(strings.TrimPrefix(line, ".explain analyze "))
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
		case strings.HasPrefix(line, ".explain "):
			q := strings.TrimPrefix(line, ".explain ")
			plan, err := db.Explain(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(plan)
		default:
			runQuery(db, line, sigc)
		}
	}
}

// traceCmd implements ".trace [id] [file]": export a retained profile as
// Chrome trace-event JSON, to stdout or to a file for loading in Perfetto.
func traceCmd(db *proteus.DB, rest string) {
	var id int64
	var file string
	if rest != "" {
		fields := strings.Fields(rest)
		if n, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
			id = n
			fields = fields[1:]
		}
		if len(fields) > 0 {
			file = fields[0]
		}
	}
	data, ok := db.TraceJSON(id)
	if !ok {
		fmt.Println("no matching profile (run with -obs, or use .explain analyze <query>)")
		return
	}
	if file == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(file, data, 0o644); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("wrote %d bytes to %s (load in ui.perfetto.dev or chrome://tracing)\n", len(data), file)
}

func runQuery(db *proteus.DB, q string, sigc <-chan os.Signal) {
	// Drop any Ctrl-C delivered while idle so it can't cancel this query
	// before it starts.
	select {
	case <-sigc:
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		select {
		case <-sigc:
			fmt.Println("\n^C cancelling query...")
			cancel()
		case <-done:
		}
	}()
	start := time.Now()
	res, err := db.QueryContext(ctx, q)
	close(done)
	cancel()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, row := range res.Rows {
		if i >= 25 {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		fmt.Println(row)
	}
	fmt.Printf("-- %d row(s) in %v\n", len(res.Rows), time.Since(start).Round(time.Microsecond))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
